(* Tests for the network substrate: delivery, delays, ordering, failures,
   incarnations, timers, accounting. *)

module Engine = Ocube_sim.Engine
module Rng = Ocube_sim.Rng

module P = struct
  type t = Ping of int | Pong

  let pp ppf = function
    | Ping k -> Format.fprintf ppf "ping(%d)" k
    | Pong -> Format.pp_print_string ppf "pong"

  let category = function Ping _ -> "ping" | Pong -> "pong"
end

module Net = Ocube_net.Network.Make (P)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

let make ?(n = 4) ?(delay = Ocube_net.Network.Constant 1.0) ?(seed = 1) () =
  let engine = Engine.create () in
  let rng = Rng.create seed in
  let net = Net.create ~engine ~rng ~n ~delay () in
  (engine, net)

let test_basic_delivery () =
  let engine, net = make () in
  let received = ref [] in
  for i = 0 to 3 do
    Net.set_handler net i (fun ~src payload -> received := (i, src, payload) :: !received)
  done;
  Net.send net ~src:0 ~dst:2 (P.Ping 7);
  Engine.run engine;
  (match !received with
  | [ (2, 0, P.Ping 7) ] -> ()
  | _ -> Alcotest.fail "wrong delivery");
  checkf "took delta" 1.0 (Engine.now engine);
  checki "sent" 1 (Net.sent_total net);
  checki "delivered" 1 (Net.delivered_total net)

let test_constant_delay_fifo () =
  let engine, net = make () in
  let order = ref [] in
  Net.set_handler net 1 (fun ~src:_ -> function
    | P.Ping k -> order := k :: !order
    | P.Pong -> ());
  for k = 1 to 5 do
    Net.send net ~src:0 ~dst:1 (P.Ping k)
  done;
  Engine.run engine;
  Alcotest.(check (list int)) "constant delay preserves order" [ 1; 2; 3; 4; 5 ]
    (List.rev !order)

let test_uniform_delay_can_reorder () =
  (* With uniform delays, some seed must reorder two messages. *)
  let reordered = ref false in
  let seed = ref 0 in
  while (not !reordered) && !seed < 50 do
    incr seed;
    let engine, net =
      make ~delay:(Ocube_net.Network.Uniform { lo = 0.1; hi = 5.0 }) ~seed:!seed ()
    in
    let order = ref [] in
    Net.set_handler net 1 (fun ~src:_ -> function
      | P.Ping k -> order := k :: !order
      | P.Pong -> ());
    Net.send net ~src:0 ~dst:1 (P.Ping 1);
    Net.send net ~src:0 ~dst:1 (P.Ping 2);
    Engine.run engine;
    if List.rev !order = [ 2; 1 ] then reordered := true
  done;
  checkb "observed reordering under some seed" true !reordered

let test_delay_bounded_by_delta () =
  let engine, net =
    make ~delay:(Ocube_net.Network.Exponential { mean = 1.0; cap = 3.0 }) ()
  in
  Net.set_handler net 1 (fun ~src:_ _ -> ());
  checkf "delta" 3.0 (Net.delta net);
  for _ = 1 to 200 do
    let t0 = Engine.now engine in
    Net.send net ~src:0 ~dst:1 P.Pong;
    Engine.run engine;
    checkb "within delta" true (Engine.now engine -. t0 <= 3.0 +. 1e-9)
  done

let test_uniform_delays_within_bounds () =
  let engine, net =
    make ~delay:(Ocube_net.Network.Uniform { lo = 0.5; hi = 2.5 }) ()
  in
  Net.set_handler net 1 (fun ~src:_ _ -> ());
  checkf "delta is hi" 2.5 (Net.delta net);
  for _ = 1 to 200 do
    let t0 = Engine.now engine in
    Net.send net ~src:0 ~dst:1 P.Pong;
    Engine.run engine;
    let d = Engine.now engine -. t0 in
    checkb "at least lo" true (d >= 0.5 -. 1e-9);
    checkb "at most hi" true (d <= 2.5 +. 1e-9)
  done

let test_send_to_failed_is_dropped () =
  let engine, net = make () in
  let received = ref 0 in
  Net.set_handler net 1 (fun ~src:_ _ -> incr received);
  Net.fail net 1;
  Net.send net ~src:0 ~dst:1 P.Pong;
  Engine.run engine;
  checki "nothing delivered" 0 !received;
  checki "dropped" 1 (Net.dropped_total net)

let test_in_transit_lost_on_failure () =
  let engine, net = make () in
  let received = ref 0 in
  Net.set_handler net 1 (fun ~src:_ _ -> incr received);
  Net.send net ~src:0 ~dst:1 P.Pong;
  (* Fail node 1 before the message arrives. *)
  ignore (Engine.schedule engine ~delay:0.5 (fun () -> Net.fail net 1));
  Engine.run engine;
  checki "in-transit message lost" 0 !received

let test_message_across_incarnations_lost () =
  let engine, net = make () in
  let received = ref 0 in
  Net.set_handler net 1 (fun ~src:_ _ -> incr received);
  Net.send net ~src:0 ~dst:1 P.Pong;
  (* Fail and recover within the transit window: the old message must not
     be delivered to the new incarnation. *)
  ignore (Engine.schedule engine ~delay:0.2 (fun () -> Net.fail net 1));
  ignore (Engine.schedule engine ~delay:0.4 (fun () -> Net.recover net 1));
  Engine.run engine;
  checki "message from the past life lost" 0 !received;
  checki "incarnation" 2 (Net.incarnation net 1)

let test_send_from_failed_rejected () =
  let _, net = make () in
  Net.fail net 0;
  Alcotest.check_raises "failed node cannot send"
    (Invalid_argument "Network.send: node 0 is failed and cannot send")
    (fun () -> Net.send net ~src:0 ~dst:1 P.Pong)

let test_timer_guarded_by_failure () =
  let engine, net = make () in
  let fired = ref 0 in
  ignore (Net.set_timer net ~node:1 ~delay:1.0 (fun () -> incr fired));
  Net.fail net 1;
  Engine.run engine;
  checki "timer of failed node suppressed" 0 !fired

let test_timer_guarded_by_incarnation () =
  let engine, net = make () in
  let fired = ref 0 in
  ignore (Net.set_timer net ~node:1 ~delay:1.0 (fun () -> incr fired));
  Net.fail net 1;
  Net.recover net 1;
  Engine.run engine;
  checki "timer from previous incarnation suppressed" 0 !fired

let test_timer_cancel () =
  let engine, net = make () in
  let fired = ref 0 in
  let timer = Net.set_timer net ~node:1 ~delay:1.0 (fun () -> incr fired) in
  Net.cancel_timer net timer;
  Engine.run engine;
  checki "cancelled" 0 !fired

let test_alive_nodes_and_recover () =
  let _, net = make () in
  Net.fail net 2;
  Alcotest.(check (list int)) "alive" [ 0; 1; 3 ] (Net.alive_nodes net);
  checkb "is_failed" true (Net.is_failed net 2);
  Net.recover net 2;
  Alcotest.(check (list int)) "all alive" [ 0; 1; 2; 3 ] (Net.alive_nodes net);
  Alcotest.check_raises "recover up node"
    (Invalid_argument "Network.recover: node is not failed") (fun () ->
      Net.recover net 2)

let test_category_accounting () =
  let engine, net = make () in
  Net.set_handler net 1 (fun ~src:_ _ -> ());
  Net.send net ~src:0 ~dst:1 (P.Ping 1);
  Net.send net ~src:0 ~dst:1 (P.Ping 2);
  Net.send net ~src:0 ~dst:1 P.Pong;
  Engine.run engine;
  Alcotest.(check (list (pair string int)))
    "categories"
    [ ("ping", 2); ("pong", 1) ]
    (Net.sent_by_category net);
  Net.reset_counters net;
  checki "reset" 0 (Net.sent_total net)

let test_drop_handler () =
  let engine, net = make () in
  let dropped = ref [] in
  Net.set_drop_handler net (fun ~dst payload -> dropped := (dst, payload) :: !dropped);
  Net.fail net 3;
  Net.send net ~src:0 ~dst:3 (P.Ping 9);
  Engine.run engine;
  match !dropped with
  | [ (3, P.Ping 9) ] -> ()
  | _ -> Alcotest.fail "drop handler not invoked"

let test_delay_model_validation () =
  let engine = Engine.create () in
  let mk delay = ignore (Net.create ~engine ~rng:(Rng.create 1) ~n:2 ~delay ()) in
  Alcotest.check_raises "zero constant"
    (Invalid_argument "Network: delay must be positive") (fun () ->
      mk (Ocube_net.Network.Constant 0.0));
  Alcotest.check_raises "bad uniform"
    (Invalid_argument "Network: bad uniform delay bounds") (fun () ->
      mk (Ocube_net.Network.Uniform { lo = 2.0; hi = 1.0 }));
  Alcotest.check_raises "bad exponential"
    (Invalid_argument "Network: bad exponential delay parameters") (fun () ->
      mk (Ocube_net.Network.Exponential { mean = 2.0; cap = 1.0 }))

let test_delay_bound_function () =
  checkf "constant" 2.0 (Ocube_net.Network.delay_bound (Ocube_net.Network.Constant 2.0));
  checkf "uniform" 5.0
    (Ocube_net.Network.delay_bound (Ocube_net.Network.Uniform { lo = 1.0; hi = 5.0 }));
  checkf "exponential" 9.0
    (Ocube_net.Network.delay_bound
       (Ocube_net.Network.Exponential { mean = 2.0; cap = 9.0 }))

let test_out_of_range_nodes_rejected () =
  let _, net = make () in
  Alcotest.check_raises "bad src" (Invalid_argument "Network: node 9 out of range")
    (fun () -> Net.send net ~src:9 ~dst:0 P.Pong);
  Alcotest.check_raises "bad handler node"
    (Invalid_argument "Network: node -1 out of range") (fun () ->
      Net.set_handler net (-1) (fun ~src:_ _ -> ()))

let test_self_send () =
  let engine, net = make () in
  let got = ref false in
  Net.set_handler net 0 (fun ~src payload ->
      checki "src" 0 src;
      match payload with P.Pong -> got := true | _ -> ());
  Net.send net ~src:0 ~dst:0 P.Pong;
  Engine.run engine;
  checkb "self delivery" true !got

let suite =
  [
    Alcotest.test_case "basic delivery" `Quick test_basic_delivery;
    Alcotest.test_case "constant delay is FIFO" `Quick test_constant_delay_fifo;
    Alcotest.test_case "uniform delay reorders" `Quick
      test_uniform_delay_can_reorder;
    Alcotest.test_case "delays bounded by delta" `Quick
      test_delay_bounded_by_delta;
    Alcotest.test_case "send to failed node dropped" `Quick
      test_send_to_failed_is_dropped;
    Alcotest.test_case "in-transit messages lost on failure" `Quick
      test_in_transit_lost_on_failure;
    Alcotest.test_case "messages do not cross incarnations" `Quick
      test_message_across_incarnations_lost;
    Alcotest.test_case "failed node cannot send" `Quick
      test_send_from_failed_rejected;
    Alcotest.test_case "timers die with their node" `Quick
      test_timer_guarded_by_failure;
    Alcotest.test_case "timers do not cross incarnations" `Quick
      test_timer_guarded_by_incarnation;
    Alcotest.test_case "timer cancellation" `Quick test_timer_cancel;
    Alcotest.test_case "alive set and recovery" `Quick
      test_alive_nodes_and_recover;
    Alcotest.test_case "per-category accounting" `Quick
      test_category_accounting;
    Alcotest.test_case "drop handler" `Quick test_drop_handler;
    Alcotest.test_case "self send" `Quick test_self_send;
    Alcotest.test_case "delay model validation" `Quick
      test_delay_model_validation;
    Alcotest.test_case "delay_bound" `Quick test_delay_bound_function;
    Alcotest.test_case "uniform delays stay within [lo, hi]" `Quick
      test_uniform_delays_within_bounds;
    Alcotest.test_case "out-of-range nodes rejected" `Quick
      test_out_of_range_nodes_rejected;
  ]
