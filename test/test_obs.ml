(* Tests for the observability layer (lib/obs): the metrics registry,
   request spans and the exporters — plus the paper-bound checks that the
   per-request message counts recorded by the new layer obey Section 4 of
   the paper (worst case log2 N + 1, average tracking (3/4)log2 N + 5/4).

   The paper-bound tests deliberately read the *metrics*, not hand-rolled
   counters: they double as an end-to-end proof that the attribution
   pipeline (network send tap -> Message.origin -> span hop charge ->
   histogram) is wired correctly. *)

open Ocube_harness
module Metrics = Ocube_obs.Metrics
module Span = Ocube_obs.Span
module Export = Ocube_obs.Export
module Json = Ocube_obs.Json
module Histogram = Ocube_stats.Histogram
module Runner = Ocube_mutex.Runner
module Pool = Ocube_par.Pool

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))

(* --- registry ------------------------------------------------------------- *)

let test_registry_basic () =
  let reg = Metrics.create ~n:3 () in
  let c = Metrics.counter reg ~name:"c_total" ~help:"a counter" in
  let g = Metrics.gauge reg ~name:"g" ~help:"a gauge" in
  let h = Metrics.hist reg ~name:"h" ~help:"a histogram" in
  Metrics.incr c ~node:0;
  Metrics.incr c ~node:0;
  Metrics.add c ~node:2 5;
  Metrics.set g ~node:1 3.5;
  Metrics.set_max g ~node:1 2.0;
  Metrics.set_max g ~node:1 7.25;
  Metrics.observe h ~node:0 4;
  Metrics.observe h ~node:0 4;
  Metrics.observe h ~node:2 9;
  checki "counter node 0" 2 (Metrics.counter_value c ~node:0);
  checki "counter node 1" 0 (Metrics.counter_value c ~node:1);
  checki "counter node 2" 5 (Metrics.counter_value c ~node:2);
  checkf "gauge watermark" 7.25 (Metrics.gauge_value g ~node:1);
  checki "hist count" 2 (Histogram.count (Metrics.hist_value h ~node:0));
  let s = Metrics.snapshot reg in
  checki "snapshot totals" 7 (Metrics.total_of s "c_total");
  checki "snapshot hist total" 3 (Histogram.count (Metrics.hist_total s "h"))

let test_registry_duplicate_name () =
  let reg = Metrics.create ~n:2 () in
  ignore (Metrics.counter reg ~name:"dup" ~help:"");
  checkb "duplicate registration raises" true
    (try
       ignore (Metrics.gauge reg ~name:"dup" ~help:"");
       false
     with Invalid_argument _ -> true)

(* A disabled registry must record *nothing* — and the blackout must not
   leak into measurements taken after re-enabling (the satellite
   regression: a disable/enable cycle is a measurement window boundary,
   not a buffer). *)
let test_registry_disable_enable () =
  let reg = Metrics.create ~n:2 () in
  let c = Metrics.counter reg ~name:"c" ~help:"" in
  let g = Metrics.gauge reg ~name:"g" ~help:"" in
  let h = Metrics.hist reg ~name:"h" ~help:"" in
  Metrics.incr c ~node:0;
  Metrics.set_enabled reg false;
  Metrics.incr c ~node:0;
  Metrics.add c ~node:1 10;
  Metrics.set g ~node:0 99.0;
  Metrics.set_max g ~node:0 123.0;
  Metrics.observe h ~node:0 7;
  checkb "disabled" true (not (Metrics.enabled reg));
  Metrics.set_enabled reg true;
  checki "blackout increments dropped" 1 (Metrics.counter_value c ~node:0);
  checki "blackout adds dropped" 0 (Metrics.counter_value c ~node:1);
  checkf "blackout gauge writes dropped" 0.0 (Metrics.gauge_value g ~node:0);
  checki "blackout observations dropped" 0
    (Histogram.count (Metrics.hist_value h ~node:0));
  Metrics.incr c ~node:0;
  checki "recording resumes cleanly" 2 (Metrics.counter_value c ~node:0)

let test_registry_reset () =
  let reg = Metrics.create ~n:1 () in
  let c = Metrics.counter reg ~name:"c" ~help:"" in
  let h = Metrics.hist reg ~name:"h" ~help:"" in
  Metrics.incr c ~node:0;
  Metrics.observe h ~node:0 3;
  Metrics.reset reg;
  checki "counter zeroed" 0 (Metrics.counter_value c ~node:0);
  checki "hist zeroed" 0 (Histogram.count (Metrics.hist_value h ~node:0))

(* --- snapshots: merge / diff / equal -------------------------------------- *)

let two_registries () =
  let make () =
    let reg = Metrics.create ~n:2 () in
    let c = Metrics.counter reg ~name:"c" ~help:"" in
    let g = Metrics.gauge reg ~name:"g" ~help:"" in
    let h = Metrics.hist reg ~name:"h" ~help:"" in
    (reg, c, g, h)
  in
  let ra, ca, ga, ha = make () in
  let rb, cb, gb, hb = make () in
  Metrics.add ca ~node:0 3;
  Metrics.set_max ga ~node:1 5.0;
  Metrics.observe ha ~node:0 2;
  Metrics.add cb ~node:0 4;
  Metrics.add cb ~node:1 1;
  Metrics.set_max gb ~node:1 3.0;
  Metrics.observe hb ~node:0 2;
  Metrics.observe hb ~node:1 9;
  (Metrics.snapshot ra, Metrics.snapshot rb)

let test_snapshot_merge () =
  let sa, sb = two_registries () in
  let m = Metrics.merge sa sb in
  checki "counters add" 8 (Metrics.total_of m "c");
  checki "hists add" 3 (Histogram.count (Metrics.hist_total m "h"));
  (match Metrics.find_row m "g" with
  | Some { Metrics.data = Metrics.S_gauge a; _ } ->
    checkf "gauges take the max" 5.0 a.(1)
  | _ -> Alcotest.fail "gauge row missing");
  checkb "merge commutes" true (Metrics.equal m (Metrics.merge sb sa))

let test_snapshot_diff () =
  let sa, sb = two_registries () in
  let m = Metrics.merge sa sb in
  let d = Metrics.diff ~later:m ~earlier:sa in
  checkb "diff recovers the other shard (counters/hists)" true
    (Metrics.total_of d "c" = Metrics.total_of sb "c"
    && Histogram.equal (Metrics.hist_total d "h") (Metrics.hist_total sb "h"))

let test_snapshot_equal () =
  let sa, _ = two_registries () in
  let sb, _ = two_registries () in
  checkb "same recordings are equal" true (Metrics.equal sa sb);
  checkb "different recordings are not" false
    (Metrics.equal sa (Metrics.merge sa sb))

(* --- spans ----------------------------------------------------------------- *)

let test_span_lifecycle () =
  let t = Span.create ~n:2 in
  Span.open_span t ~node:0 ~time:10.0 ~busy:0.0;
  Span.note_hop t ~node:0;
  Span.note_hop t ~node:0;
  Span.note_hop t ~node:1;
  (* no span open: ignored *)
  checki "one open" 1 (Span.open_count t);
  (* Wait 10..16; the busy integral grew by 2.5 during it (someone else's
     CS), so queueing = 2.5 and transit = 3.5. *)
  Span.enter t ~node:0 ~time:16.0 ~busy:2.5;
  (match Span.close t ~node:0 ~time:17.0 with
  | None -> Alcotest.fail "span did not close"
  | Some sp ->
    checki "hops" 2 sp.Span.hops;
    checkf "queueing" 2.5 sp.Span.queueing;
    checkf "transit" 3.5 sp.Span.transit;
    checkf "service" 1.0 sp.Span.service;
    checkf "wait" 6.0 (Span.wait sp);
    checkf "duration" 7.0 (Span.duration sp);
    checkb "completed" true sp.Span.completed);
  checki "none open" 0 (Span.open_count t);
  checki "one closed" 1 (Span.closed_count t)

let test_span_abandon_and_faults () =
  let t = Span.create ~n:2 in
  Span.open_span t ~node:0 ~time:0.0 ~busy:0.0;
  Span.open_span t ~node:1 ~time:1.0 ~busy:0.0;
  Span.fault_tick t;
  (match Span.abandon t ~node:0 ~time:5.0 ~busy:2.0 with
  | None -> Alcotest.fail "abandon returned nothing"
  | Some sp ->
    checkb "not completed" false sp.Span.completed;
    checkb "never entered" true (sp.Span.enter_time = None);
    checkf "queueing up to the death" 2.0 sp.Span.queueing;
    checki "saw the fault" 1 sp.Span.faults);
  Span.fault_tick t;
  Span.enter t ~node:1 ~time:6.0 ~busy:1.0;
  (match Span.close t ~node:1 ~time:7.0 with
  | Some sp -> checki "survivor saw both fault events" 2 sp.Span.faults
  | None -> Alcotest.fail "survivor span missing");
  checki "double-abandon is a no-op" 0
    (match Span.abandon t ~node:0 ~time:9.0 ~busy:0.0 with
    | None -> 0
    | Some _ -> 1)

(* --- paper bound: per-request messages <= log2 N + 1 ----------------------- *)

(* Saturated closed-loop run: every node wishes at t = 0, then a second
   full round on the evolved structure. The metrics histogram (fed by the
   send tap through Message.origin) must show every single request at or
   under the paper's worst case of log2 N + 1 messages. *)
let saturated_bound ~p () =
  let n = 1 lsl p in
  let env, _ =
    Exp_common.make_opencube ~fault_tolerance:false ~metrics:true ~p ()
  in
  for round = 1 to 2 do
    for node = 0 to n - 1 do
      Runner.submit env node
    done;
    Runner.run_to_quiescence env;
    ignore round
  done;
  checki "all requests served" (2 * n) (Runner.cs_entries env);
  checki "no violations" 0 (Runner.violations env);
  let spans = Option.get (Runner.spans env) in
  checki "every span closed" (2 * n) (Span.closed_count spans);
  List.iter
    (fun sp ->
      if sp.Span.hops > p + 1 then
        Alcotest.failf "request %d of node %d cost %d messages (bound %d)"
          sp.Span.index sp.Span.node sp.Span.hops (p + 1))
    (Span.closed spans);
  (* Same bound read back through the histogram metric. *)
  let snap = Option.get (Runner.metrics_snapshot env) in
  let hops = Metrics.hist_total snap "request_hops" in
  checki "histogram saw every request" (2 * n) (Histogram.count hops);
  checkb "histogram max under the paper bound" true
    (match Histogram.max_value hops with Some m -> m <= p + 1 | None -> false);
  (* Attribution is conservative: it never invents messages. Spans charge
     a subset of all sends (loan-return tokens are unattributed). *)
  let charged =
    List.fold_left (fun acc sp -> acc + sp.Span.hops) 0 (Span.closed spans)
  in
  checkb "charged <= sent" true (charged <= Runner.messages_sent env);
  checki "send tap counts every message"
    (Runner.messages_sent env)
    (Metrics.total_of snap "messages_sent_total")

let test_bound_n8 () = saturated_bound ~p:3 ()

let test_bound_n16 () = saturated_bound ~p:4 ()

let test_bound_n32 () = saturated_bound ~p:5 ()

(* --- paper average: alpha_p and (3/4)log2N + 5/4 --------------------------- *)

(* One isolated request per node on a fresh cube (the paper's Section 4
   cost model). The merged metrics must reproduce alpha_p *exactly*, and
   the empirical mean must track the asymptotic closed form. *)
let test_mean_tracks_recurrence () =
  Pool.with_pool ~jobs:1 (fun pool ->
      List.iter
        (fun p ->
          let n = 1 lsl p in
          let snap = Exp_average.merged_metrics ~pool ~p in
          let total = Metrics.total_of snap "messages_sent_total" in
          checki
            (Printf.sprintf "alpha_%d from metrics" p)
            (Exp_common.alpha p) total;
          checki
            (Printf.sprintf "wishes at p=%d" p)
            n
            (Metrics.total_of snap "wishes_total");
          let mean = float_of_int total /. float_of_int n in
          let predicted = Exp_common.average_formula n in
          let rel = Float.abs (mean -. predicted) /. predicted in
          if rel > 0.25 then
            Alcotest.failf
              "p=%d: mean %.3f vs closed form %.3f (relative error %.3f)" p
              mean predicted rel)
        [ 3; 4; 5 ])

(* --- exporters -------------------------------------------------------------- *)

let run_with_obs () =
  let env, _ =
    Exp_common.make_opencube ~seed:9 ~fault_tolerance:false ~metrics:true
      ~trace:true ~p:3 ()
  in
  let n = 8 in
  for node = 0 to n - 1 do
    Runner.submit env node
  done;
  Runner.run_to_quiescence env;
  env

let test_prometheus_output () =
  let env = run_with_obs () in
  let s = Export.prometheus (Option.get (Runner.metrics_snapshot env)) in
  let has needle = Tutil.contains s needle in
  checkb "help line" true (has "# HELP ocube_wishes_total");
  checkb "type line" true (has "# TYPE ocube_request_hops histogram");
  checkb "labels" true (has "{algo=\"opencube\",node=\"0\"}");
  checkb "cumulative buckets" true (has "_bucket{algo=\"opencube\"");
  checkb "+Inf bucket" true (has "le=\"+Inf\"");
  checkb "count series" true (has "ocube_request_hops_count")

let test_json_outputs_are_valid () =
  let env = run_with_obs () in
  let snap = Option.get (Runner.metrics_snapshot env) in
  (match Json.check (Export.json snap) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "metrics JSON invalid: %s" m);
  let spans = Option.get (Runner.spans env) in
  let trace =
    match Runner.trace env with
    | Some t -> Ocube_sim.Trace.entries t
    | None -> []
  in
  checkb "trace has entries" true (List.length trace > 0);
  match Json.check (Export.chrome_trace ~trace ~spans:(Span.closed spans) ()) with
  | Ok () -> ()
  | Error m -> Alcotest.failf "chrome trace JSON invalid: %s" m

let test_json_checker_rejects_garbage () =
  List.iter
    (fun bad ->
      match Json.check bad with
      | Ok () -> Alcotest.failf "accepted %S" bad
      | Error _ -> ())
    [ ""; "{"; "{\"a\":}"; "[1,2,]"; "{\"a\":1} trailing"; "\"unclosed" ]

(* Metrics off: the observability surface is absent and the run result is
   identical — the tap really is passive. *)
let test_metrics_off_is_identical () =
  let run ~metrics =
    let env, _ =
      Exp_common.make_opencube ~seed:5 ~fault_tolerance:false ~metrics ~p:4 ()
    in
    let arrivals =
      Runner.Arrivals.poisson ~rng:(Runner.rng env) ~n:16 ~rate_per_node:0.05
        ~horizon:200.0
    in
    Runner.run_arrivals env arrivals;
    Runner.run_to_quiescence env;
    (Runner.cs_entries env, Runner.messages_sent env, Runner.wait_samples env)
  in
  let e1, m1, w1 = run ~metrics:false in
  let e2, m2, w2 = run ~metrics:true in
  checki "same entries" e1 e2;
  checki "same messages" m1 m2;
  Alcotest.(check (list (float 0.0))) "same waits bit-for-bit" w1 w2

(* --- qcheck: span arithmetic ------------------------------------------------ *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~count:300 ~name:"span phases non-negative and additive"
      (quad
         (float_range 0.0 1000.0)
         (float_range 0.0 50.0)
         (float_range 0.0 50.0)
         (float_range 0.0 50.0))
      (fun (t0, dq, dt, ds) ->
        let t = Span.create ~n:1 in
        Span.open_span t ~node:0 ~time:t0 ~busy:0.0;
        Span.enter t ~node:0 ~time:(t0 +. dq +. dt) ~busy:dq;
        match Span.close t ~node:0 ~time:(t0 +. dq +. dt +. ds) with
        | None -> false
        | Some sp ->
          let tol = 1e-9 *. (1.0 +. t0 +. dq +. dt +. ds) in
          sp.Span.queueing >= 0.0 && sp.Span.transit >= 0.0
          && sp.Span.service >= 0.0
          && Span.duration sp >= 0.0
          && Float.abs (sp.Span.queueing -. dq) <= tol
          && Float.abs (sp.Span.transit -. dt) <= tol
          && Float.abs (sp.Span.service -. ds) <= tol
          && Float.abs (Span.wait sp +. sp.Span.service -. Span.duration sp)
             <= tol);
    Test.make ~count:200 ~name:"abandoned span phases still non-negative"
      (pair (float_range 0.0 100.0) (float_range 0.0 100.0))
      (fun (t0, dw) ->
        let t = Span.create ~n:1 in
        Span.open_span t ~node:0 ~time:t0 ~busy:0.0;
        (* busy can grow by at most the elapsed wait *)
        let busy = Float.min dw (dw /. 2.0) in
        match Span.abandon t ~node:0 ~time:(t0 +. dw) ~busy with
        | None -> false
        | Some sp ->
          sp.Span.queueing >= 0.0 && sp.Span.transit >= 0.0
          && sp.Span.service = 0.0
          && (not sp.Span.completed)
          && sp.Span.enter_time = None);
  ]

let suite =
  [
    Alcotest.test_case "registry counters/gauges/histograms" `Quick
      test_registry_basic;
    Alcotest.test_case "registry rejects duplicate names" `Quick
      test_registry_duplicate_name;
    Alcotest.test_case "disabled registry records nothing" `Quick
      test_registry_disable_enable;
    Alcotest.test_case "registry reset" `Quick test_registry_reset;
    Alcotest.test_case "snapshot merge adds and commutes" `Quick
      test_snapshot_merge;
    Alcotest.test_case "snapshot diff is a window" `Quick test_snapshot_diff;
    Alcotest.test_case "snapshot equality" `Quick test_snapshot_equal;
    Alcotest.test_case "span lifecycle and phase split" `Quick
      test_span_lifecycle;
    Alcotest.test_case "span abandon and fault overlap" `Quick
      test_span_abandon_and_faults;
    Alcotest.test_case "paper bound log2N+1 at N=8" `Quick test_bound_n8;
    Alcotest.test_case "paper bound log2N+1 at N=16" `Quick test_bound_n16;
    Alcotest.test_case "paper bound log2N+1 at N=32" `Quick test_bound_n32;
    Alcotest.test_case "mean tracks the Section 4 recurrence" `Quick
      test_mean_tracks_recurrence;
    Alcotest.test_case "prometheus exporter shape" `Quick
      test_prometheus_output;
    Alcotest.test_case "JSON exporters are well-formed" `Quick
      test_json_outputs_are_valid;
    Alcotest.test_case "JSON checker rejects malformed input" `Quick
      test_json_checker_rejects_garbage;
    Alcotest.test_case "metrics off leaves the run identical" `Quick
      test_metrics_off_is_identical;
  ]
  @ List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qcheck_tests
