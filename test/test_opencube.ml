(* Structural tests for the open-cube (paper, Section 2): construction,
   dist closed form, p-groups, powers, boundary edges, Theorem 2.1
   (b-transformation), Prop. 2.3 (branch bound), Figures 2/3/5. *)

module Opencube = Ocube_topology.Opencube
module Hypercube = Ocube_topology.Opencube.Hypercube

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- construction and accessors ---------------------------------------- *)

let test_build_small () =
  let c = Opencube.build ~p:0 in
  checki "order" 1 (Opencube.order c);
  checki "root" 0 (Opencube.root c);
  Alcotest.(check (option int)) "father of root" None (Opencube.father c 0);
  let c2 = Opencube.build ~p:1 in
  Alcotest.(check (option int)) "father of 1" (Some 0) (Opencube.father c2 1)

let test_build_father_formula () =
  let c = Opencube.build ~p:5 in
  for i = 1 to 31 do
    Alcotest.(check (option int))
      (Printf.sprintf "father %d" i)
      (Some (i land (i - 1)))
      (Opencube.father c i)
  done

let test_initial_powers () =
  (* Initial power of node i is the number of trailing zero bits. *)
  let c = Opencube.build ~p:4 in
  checki "power root" 4 (Opencube.power c 0);
  checki "power 1" 0 (Opencube.power c 1);
  checki "power 2" 1 (Opencube.power c 2);
  checki "power 4" 2 (Opencube.power c 4);
  checki "power 8" 3 (Opencube.power c 8);
  checki "power 12" 2 (Opencube.power c 12)

let test_sons_count_matches_power () =
  (* "a node of power p has exactly p sons, whose powers range from 0 to
     p-1" (Section 2). *)
  let c = Opencube.build ~p:5 in
  for i = 0 to 31 do
    let sons = Opencube.sons c i in
    checki
      (Printf.sprintf "sons of %d" i)
      (Opencube.power c i)
      (List.length sons);
    let powers = List.sort compare (List.map (Opencube.power c) sons) in
    Alcotest.(check (list int))
      (Printf.sprintf "son powers of %d" i)
      (List.init (Opencube.power c i) (fun k -> k))
      powers
  done

(* --- dist --------------------------------------------------------------- *)

let test_dist_closed_form_vs_reference () =
  List.iter
    (fun p ->
      let m = Opencube.dist_matrix ~p in
      let n = 1 lsl p in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          checki (Printf.sprintf "dist %d %d" i j) m.(i).(j) (Opencube.dist i j)
        done
      done)
    [ 0; 1; 2; 3; 4; 5 ]

let test_dist_paper_examples () =
  (* Paper (1-based): dist(1,2)=1; dist(1,j)=2 for j in {3,4}; 3 for 5..8;
     4 for 9..16. 0-based: subtract one from ids. *)
  checki "dist 1 2" 1 (Opencube.dist 0 1);
  checki "dist 1 3" 2 (Opencube.dist 0 2);
  checki "dist 1 4" 2 (Opencube.dist 0 3);
  List.iter (fun j -> checki "3-group" 3 (Opencube.dist 0 j)) [ 4; 5; 6; 7 ];
  List.iter
    (fun j -> checki "4-group" 4 (Opencube.dist 0 j))
    [ 8; 9; 10; 11; 12; 13; 14; 15 ]

let test_dist_metric_properties () =
  (* dist is an ultrametric: d(i,i)=0, symmetric,
     d(i,k) <= max(d(i,j), d(j,k)). *)
  let n = 32 in
  for i = 0 to n - 1 do
    checki "identity" 0 (Opencube.dist i i);
    for j = 0 to n - 1 do
      checki "symmetry" (Opencube.dist i j) (Opencube.dist j i);
      for k = 0 to n - 1 do
        checkb "ultrametric" true
          (Opencube.dist i k <= max (Opencube.dist i j) (Opencube.dist j k))
      done
    done
  done

let test_p_group () =
  Alcotest.(check (list int)) "1-group of 0" [ 0; 1 ] (Opencube.p_group ~d:1 0);
  Alcotest.(check (list int))
    "2-group of 6" [ 4; 5; 6; 7 ]
    (Opencube.p_group ~d:2 6);
  Alcotest.(check (list int))
    "0-group is singleton" [ 9 ]
    (Opencube.p_group ~d:0 9);
  (* Members of the same d-group are exactly the nodes at dist <= d. *)
  let g = Opencube.p_group ~d:3 11 in
  List.iter (fun j -> checkb "dist within group" true (Opencube.dist 11 j <= 3)) g

(* --- proposition 2.1 / corollary 2.1 ------------------------------------ *)

let test_prop21_power_of_son () =
  (* If j is a son of i then power j = dist i j - 1. *)
  let c = Opencube.build ~p:5 in
  for j = 1 to 31 do
    match Opencube.father c j with
    | Some i -> checki "prop 2.1" (Opencube.dist i j - 1) (Opencube.power c j)
    | None -> ()
  done

let test_cor21_father_unique () =
  (* father(i) is the only node j with dist i j = power i + 1 and
     power j > power i. *)
  let c = Opencube.build ~p:4 in
  for i = 1 to 15 do
    let p_i = Opencube.power c i in
    let candidates =
      List.filter
        (fun j ->
          j <> i
          && Opencube.dist i j = p_i + 1
          && Opencube.power c j > p_i)
        (List.init 16 (fun k -> k))
    in
    Alcotest.(check (list int))
      (Printf.sprintf "unique father of %d" i)
      [ Option.get (Opencube.father c i) ]
      candidates
  done

(* --- b-transformation (Theorem 2.1) ------------------------------------ *)

let test_b_transform_preserves_structure () =
  let c = Opencube.build ~p:4 in
  Opencube.b_transform c 0;
  (* 0's last son is 8. *)
  Alcotest.(check (option int)) "8 is root" None (Opencube.father c 8);
  Alcotest.(check (option int)) "0 under 8" (Some 8) (Opencube.father c 0);
  checkb "still an open-cube" true (Opencube.is_valid c);
  checki "power of 8 rose" 4 (Opencube.power c 8);
  checki "power of 0 fell" 3 (Opencube.power c 0)

let test_b_transform_on_leaf_rejected () =
  let c = Opencube.build ~p:3 in
  Alcotest.check_raises "no son"
    (Invalid_argument "Opencube.b_transform: node has no son") (fun () ->
      Opencube.b_transform c 7)

let test_fig5_non_boundary_swap_breaks () =
  (* Figure 5: swapping node 1 with its non-last son 2 (paper numbering)
     destroys the 4-open-cube. *)
  let c = Opencube.build ~p:2 in
  (* paper node 1 = id 0 (root, power 2); paper node 2 = id 1 (power 0):
     not the last son (the last son is id 2). Manual swap: *)
  Opencube.set_father c 1 None;
  Opencube.set_father c 0 (Some 1);
  checkb "structure destroyed" false (Opencube.is_valid c)

let test_groups_static_under_b_transform () =
  (* Corollaries 2.2/2.3: group membership and distances never change -
     dist is a pure function, so it suffices that the checker keeps passing
     while powers stay consistent through arbitrary b-transformations. *)
  let c = Opencube.build ~p:4 in
  let rng = Ocube_sim.Rng.create 99 in
  for _ = 1 to 500 do
    let i = Ocube_sim.Rng.int rng 16 in
    if Opencube.sons c i <> [] then begin
      Opencube.b_transform c i;
      match Opencube.check c with
      | Ok () -> ()
      | Error m -> Alcotest.failf "broken after swap at %d: %s" i m
    end
  done

(* --- branches and Prop. 2.3 -------------------------------------------- *)

let test_branch_and_depth () =
  let c = Opencube.build ~p:4 in
  Alcotest.(check (list int)) "branch of 15" [ 15; 14; 12; 8; 0 ]
    (Opencube.branch c 15);
  checki "depth of 15" 4 (Opencube.depth c 15);
  checki "depth of root" 0 (Opencube.depth c 0)

let test_prop23_branch_bound () =
  (* r <= log2 N - n1 on every branch of every randomly-evolved cube. *)
  let rng = Ocube_sim.Rng.create 7 in
  List.iter
    (fun p ->
      let c = Opencube.build ~p in
      for _ = 1 to 200 do
        let i = Ocube_sim.Rng.int rng (1 lsl p) in
        if Opencube.sons c i <> [] then Opencube.b_transform c i;
        let leaf = Ocube_sim.Rng.int rng (1 lsl p) in
        let r, n1 = Opencube.branch_stats c leaf in
        if r > p - n1 then
          Alcotest.failf "branch bound violated: r=%d n1=%d p=%d" r n1 p
      done)
    [ 1; 2; 3; 4; 5; 6 ]

let test_leaves () =
  let c = Opencube.build ~p:3 in
  (* Odd ids are the initial leaves. *)
  Alcotest.(check (list int)) "leaves" [ 1; 3; 5; 7 ] (Opencube.leaves c)

(* --- checker ------------------------------------------------------------ *)

let test_checker_accepts_initial () =
  List.iter
    (fun p -> checkb "valid" true (Opencube.is_valid (Opencube.build ~p)))
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let test_checker_rejects_cycle () =
  let c = Opencube.build ~p:2 in
  Opencube.set_father c 0 (Some 1);
  Opencube.set_father c 1 (Some 0);
  checkb "2-cycle rejected" false (Opencube.is_valid c)

let test_checker_rejects_self_loop () =
  let c = Opencube.build ~p:1 in
  Opencube.set_father c 1 (Some 1);
  checkb "self-loop rejected" false (Opencube.is_valid c)

let test_checker_rejects_two_roots () =
  let c = Opencube.build ~p:2 in
  Opencube.set_father c 2 None;
  checkb "two roots rejected" false (Opencube.is_valid c)

let test_checker_rejects_wrong_link () =
  (* Link the two halves through non-root nodes. *)
  let c = Opencube.build ~p:2 in
  Opencube.set_father c 2 (Some 1);
  Opencube.set_father c 3 (Some 2);
  checkb "wrong inter-half link rejected" false (Opencube.is_valid c)

let test_of_fathers_validation () =
  Alcotest.check_raises "length must be a power of two"
    (Invalid_argument "Opencube.of_fathers: length must be a power of two")
    (fun () -> ignore (Opencube.of_fathers [| None; Some 0; Some 0 |]))

(* --- figures ------------------------------------------------------------ *)

let test_fig3_initial_tree_inside_hypercube () =
  List.iter
    (fun p ->
      let c = Opencube.build ~p in
      List.iter
        (fun (son, father) ->
          checkb
            (Printf.sprintf "edge %d-%d is a hypercube edge" son father)
            true
            (Hypercube.is_edge son father))
        (Opencube.edges c);
      (* A spanning tree uses exactly n-1 of the hypercube's p*2^(p-1)
         edges. *)
      checki "edge count" ((1 lsl p) - 1) (List.length (Opencube.edges c)))
    [ 1; 2; 3; 4; 5 ]

let test_render_mentions_all_nodes () =
  let c = Opencube.build ~p:3 in
  let s = Opencube.render c in
  for i = 1 to 8 do
    checkb
      (Printf.sprintf "node %d rendered" i)
      true
      (Tutil.contains s (string_of_int i))
  done

let test_to_dot () =
  let c = Opencube.build ~p:2 in
  let dot = Opencube.to_dot c in
  checkb "digraph" true (Tutil.contains dot "digraph");
  checkb "edge 1->0" true (Tutil.contains dot "n1 -> n0")

let test_root_cache_agrees_with_scan () =
  (* The cached root must stay equal to the linear scan it replaced
     through long b-transformation chains (exact cache maintenance) and
     across raw [set_father] edits (cache invalidation). *)
  let p = 6 in
  let c = Opencube.build ~p in
  let n = 1 lsl p in
  let rng = Ocube_sim.Rng.create 17 in
  let scan_root () =
    let rec find i =
      if i >= n then Alcotest.fail "no root"
      else match Opencube.father c i with None -> i | Some _ -> find (i + 1)
    in
    find 0
  in
  for step = 1 to 10_000 do
    let i = Ocube_sim.Rng.int rng n in
    if Opencube.last_son c i <> None then Opencube.b_transform c i;
    if step mod 100 = 0 then
      checki "root = scan during b-transform chain" (scan_root ())
        (Opencube.root c)
  done;
  checki "root = scan after 10k b-transforms" (scan_root ()) (Opencube.root c);
  (* Raw surgery: move the root under some node and crown a new one. *)
  let r = Opencube.root c in
  let other = (r + 1) mod n in
  let f = match Opencube.father c other with Some f -> f | None -> r in
  Opencube.set_father c other None;
  Opencube.set_father c r (Some other);
  checki "root = scan after set_father" (scan_root ()) (Opencube.root c);
  Opencube.set_father c r None;
  Opencube.set_father c other (Some f);
  checki "root = scan after restoring" (scan_root ()) (Opencube.root c)

(* --- qcheck properties --------------------------------------------------- *)

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~count:200
      ~name:"random b-transformation sequences preserve the open-cube"
      (pair (int_range 1 6) (list_of_size (Gen.int_range 0 60) (int_range 0 1000)))
      (fun (p, picks) ->
        let c = Opencube.build ~p in
        List.iter
          (fun pick ->
            let i = pick mod (1 lsl p) in
            if Opencube.sons c i <> [] then Opencube.b_transform c i)
          picks;
        Opencube.is_valid c);
    Test.make ~count:200 ~name:"power sums to n-1 over all nodes"
      (pair (int_range 1 6) (list_of_size (Gen.int_range 0 40) (int_range 0 1000)))
      (fun (p, picks) ->
        (* Each node of power q has q sons; total sons = n-1 edges. *)
        let c = Opencube.build ~p in
        List.iter
          (fun pick ->
            let i = pick mod (1 lsl p) in
            if Opencube.sons c i <> [] then Opencube.b_transform c i)
          picks;
        let n = 1 lsl p in
        let total = ref 0 in
        for i = 0 to n - 1 do
          total := !total + Opencube.power c i
        done;
        !total = n - 1);
    Test.make ~count:500 ~name:"dist equals bit length of xor"
      (pair (int_range 0 4095) (int_range 0 4095))
      (fun (i, j) ->
        let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
        Opencube.dist i j = bits 0 (i lxor j));
    Test.make ~count:200 ~name:"branch bound r <= p - n1 (Prop 2.3)"
      (pair (int_range 1 7) (list_of_size (Gen.int_range 0 80) (int_range 0 10000)))
      (fun (p, picks) ->
        let c = Opencube.build ~p in
        List.iter
          (fun pick ->
            let i = pick mod (1 lsl p) in
            if Opencube.sons c i <> [] then Opencube.b_transform c i)
          picks;
        List.for_all
          (fun leaf ->
            let r, n1 = Opencube.branch_stats c leaf in
            r <= p - n1)
          (List.init (1 lsl p) (fun i -> i)));
    Test.make ~count:200 ~name:"last son has power = father's power - 1"
      (pair (int_range 1 6) (list_of_size (Gen.int_range 0 40) (int_range 0 1000)))
      (fun (p, picks) ->
        let c = Opencube.build ~p in
        List.iter
          (fun pick ->
            let i = pick mod (1 lsl p) in
            if Opencube.sons c i <> [] then Opencube.b_transform c i)
          picks;
        List.for_all
          (fun i ->
            match Opencube.last_son c i with
            | None -> Opencube.power c i = 0
            | Some j -> Opencube.power c j = Opencube.power c i - 1)
          (List.init (1 lsl p) (fun i -> i)));
    Test.make ~count:200
      ~name:"every d-group contains exactly one d-root (Cor 2.2)"
      (pair (int_range 1 6) (list_of_size (Gen.int_range 0 60) (int_range 0 1000)))
      (fun (p, picks) ->
        (* The d-groups are static blocks; in any open cube each holds
           exactly one node of power >= d (its local root). *)
        let c = Opencube.build ~p in
        List.iter
          (fun pick ->
            let i = pick mod (1 lsl p) in
            if Opencube.sons c i <> [] then Opencube.b_transform c i)
          picks;
        let ok = ref true in
        for d = 0 to p do
          let blocks = 1 lsl (p - d) in
          for b = 0 to blocks - 1 do
            let group = Opencube.p_group ~d (b lsl d) in
            let roots =
              List.filter (fun i -> Opencube.power c i >= d) group
            in
            if List.length roots <> 1 then ok := false
          done
        done;
        !ok);
    Test.make ~count:200
      ~name:"power = dist to father - 1 (Prop 2.1) under any transforms"
      (pair (int_range 1 6) (list_of_size (Gen.int_range 0 60) (int_range 0 1000)))
      (fun (p, picks) ->
        let c = Opencube.build ~p in
        List.iter
          (fun pick ->
            let i = pick mod (1 lsl p) in
            if Opencube.sons c i <> [] then Opencube.b_transform c i)
          picks;
        List.for_all
          (fun i ->
            match Opencube.father c i with
            | None -> Opencube.power c i = p
            | Some f -> Opencube.power c i = Opencube.dist i f - 1)
          (List.init (1 lsl p) (fun i -> i)));
    (* Representation parity: the implicit (Bigarray + id arithmetic)
       tree must be observationally identical to the explicit reference
       oracle — per node, on every accessor — for any b-transform
       history. *)
    Test.make ~count:200
      ~name:"explicit/implicit parity under b-transform chains"
      (pair (int_range 1 8)
         (list_of_size (Gen.int_range 0 80) (int_range 0 100_000)))
      (fun (p, picks) ->
        let e = Opencube.build_mode Opencube.Explicit ~p in
        let im = Opencube.build_mode Opencube.Implicit ~p in
        let n = 1 lsl p in
        List.iter
          (fun pick ->
            let i = pick mod n in
            match Opencube.last_son e i with
            | Some _ ->
              Opencube.b_transform e i;
              Opencube.b_transform im i
            | None -> ())
          picks;
        let ok = ref (Opencube.root e = Opencube.root im) in
        for i = 0 to n - 1 do
          if
            Opencube.father e i <> Opencube.father im i
            || Opencube.power e i <> Opencube.power im i
            || Opencube.sons e i <> Opencube.sons im i
            || Opencube.last_son e i <> Opencube.last_son im i
          then ok := false
        done;
        !ok
        && Opencube.leaves e = Opencube.leaves im
        && Opencube.is_valid e && Opencube.is_valid im);
    (* Raw surgery drops the implicit tree to its untrusted scan
       fallback; the fallback — and the re-certification performed by a
       successful check — must still agree with the explicit oracle. *)
    Test.make ~count:200
      ~name:"explicit/implicit parity under raw set_father surgery"
      (pair (int_range 1 8)
         (list_of_size (Gen.int_range 0 24)
            (pair (int_range 0 100_000) (int_range 0 100_000))))
      (fun (p, edits) ->
        let n = 1 lsl p in
        let e = Opencube.build_mode Opencube.Explicit ~p in
        let im = Opencube.build_mode Opencube.Implicit ~p in
        List.iter
          (fun (a, b) ->
            let i = a mod n in
            let fo =
              let v = b mod (n + 1) in
              if v = n then None else Some v
            in
            Opencube.set_father e i fo;
            Opencube.set_father im i fo)
          edits;
        let agree () =
          let ok = ref true in
          for i = 0 to n - 1 do
            if
              Opencube.father e i <> Opencube.father im i
              || Opencube.sons e i <> Opencube.sons im i
              || Opencube.last_son e i <> Opencube.last_son im i
            then ok := false
          done;
          !ok
        in
        let untrusted_ok = agree () in
        (* check verdicts must match; when they pass, the implicit tree is
           back on the closed-form path and must still agree. *)
        let ve = Opencube.is_valid e and vi = Opencube.is_valid im in
        untrusted_ok && ve = vi && agree ());
  ]

(* The closed-form initial-tree formulas against the explicit structures,
   exhaustively for every node at p <= 8. *)
let test_initial_closed_forms () =
  for p = 0 to 8 do
    let c = Opencube.build_mode Opencube.Explicit ~p in
    for i = 0 to (1 lsl p) - 1 do
      Alcotest.(check (option int))
        (Printf.sprintf "initial_father p=%d i=%d" p i)
        (Opencube.father c i) (Opencube.initial_father i);
      checki
        (Printf.sprintf "initial_power p=%d i=%d" p i)
        (Opencube.power c i)
        (Opencube.initial_power ~p i);
      Alcotest.(check (list int))
        (Printf.sprintf "initial_sons p=%d i=%d" p i)
        (Opencube.sons c i)
        (Opencube.initial_sons ~p i);
      Alcotest.(check (option int))
        (Printf.sprintf "initial_last_son p=%d i=%d" p i)
        (Opencube.last_son c i)
        (Opencube.initial_last_son ~p i)
    done
  done

let suite =
  [
    Alcotest.test_case "build tiny cubes" `Quick test_build_small;
    Alcotest.test_case "father formula i land (i-1)" `Quick
      test_build_father_formula;
    Alcotest.test_case "initial powers (trailing zeros)" `Quick
      test_initial_powers;
    Alcotest.test_case "sons count and powers match Section 2" `Quick
      test_sons_count_matches_power;
    Alcotest.test_case "dist closed form = recursive definition" `Quick
      test_dist_closed_form_vs_reference;
    Alcotest.test_case "dist matches the paper's examples" `Quick
      test_dist_paper_examples;
    Alcotest.test_case "dist is an ultrametric" `Quick
      test_dist_metric_properties;
    Alcotest.test_case "p-groups are aligned blocks" `Quick test_p_group;
    Alcotest.test_case "Prop 2.1: power of a son" `Quick
      test_prop21_power_of_son;
    Alcotest.test_case "Cor 2.1: father is unique" `Quick
      test_cor21_father_unique;
    Alcotest.test_case "Thm 2.1: b-transformation" `Quick
      test_b_transform_preserves_structure;
    Alcotest.test_case "b-transformation rejected on a leaf" `Quick
      test_b_transform_on_leaf_rejected;
    Alcotest.test_case "Fig 5: non-boundary swap breaks structure" `Quick
      test_fig5_non_boundary_swap_breaks;
    Alcotest.test_case "checker survives 500 random swaps" `Quick
      test_groups_static_under_b_transform;
    Alcotest.test_case "branches and depths" `Quick test_branch_and_depth;
    Alcotest.test_case "Prop 2.3 branch bound" `Quick test_prop23_branch_bound;
    Alcotest.test_case "leaves of the initial cube" `Quick test_leaves;
    Alcotest.test_case "checker accepts initial cubes" `Quick
      test_checker_accepts_initial;
    Alcotest.test_case "checker rejects 2-cycles" `Quick
      test_checker_rejects_cycle;
    Alcotest.test_case "checker rejects self-loops" `Quick
      test_checker_rejects_self_loop;
    Alcotest.test_case "checker rejects double roots" `Quick
      test_checker_rejects_two_roots;
    Alcotest.test_case "checker rejects mislinked halves" `Quick
      test_checker_rejects_wrong_link;
    Alcotest.test_case "of_fathers validates size" `Quick
      test_of_fathers_validation;
    Alcotest.test_case "Fig 3: initial cube inside the hypercube" `Quick
      test_fig3_initial_tree_inside_hypercube;
    Alcotest.test_case "ASCII rendering covers all nodes" `Quick
      test_render_mentions_all_nodes;
    Alcotest.test_case "DOT export" `Quick test_to_dot;
    Alcotest.test_case "root cache agrees with the scan" `Quick
      test_root_cache_agrees_with_scan;
    Alcotest.test_case "closed-form initial tree = explicit structures"
      `Quick test_initial_closed_forms;
  ]
  @ List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qcheck_tests
