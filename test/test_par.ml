(* Tests for the domain pool: full index coverage, ordered results, the
   bit-identical reduction contract (including float accumulation), safe
   nesting, exception propagation — and the pool's integration with the
   harness: an experiment table rendered at jobs=4 must equal the serial
   one byte for byte. *)

module Pool = Ocube_par.Pool
module Registry = Ocube_harness.Registry
module Exp_average = Ocube_harness.Exp_average
module Metrics = Ocube_obs.Metrics
module Export = Ocube_obs.Export

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

let test_parallel_for_covers_all () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let n = 1000 in
      let hits = Array.make n 0 in
      (* Static striping: each index is owned by exactly one worker, so
         unsynchronised writes to distinct slots are safe. *)
      Pool.parallel_for pool ~n (fun i -> hits.(i) <- hits.(i) + 1);
      Array.iteri
        (fun i h -> if h <> 1 then Alcotest.failf "index %d ran %d times" i h)
        hits)

let test_map_array_ordered () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let a = Pool.map_array pool ~n:257 (fun i -> (i * i) + 1) in
      Alcotest.(check (array int))
        "matches serial init"
        (Array.init 257 (fun i -> (i * i) + 1))
        a)

let test_map_list () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let xs = List.init 100 (fun i -> i - 50) in
      Alcotest.(check (list int))
        "matches List.map" (List.map abs xs)
        (Pool.map_list pool abs xs))

let test_map_reduce_float_bits () =
  (* Float addition is not associative: only an in-order reduction can be
     bit-identical to the serial fold. *)
  let n = 10_000 in
  let f i = 1.0 /. float_of_int (i + 3) in
  let serial = ref 0.0 in
  for i = 0 to n - 1 do
    serial := !serial +. f i
  done;
  Pool.with_pool ~jobs:4 (fun pool ->
      let parallel =
        Pool.map_reduce pool ~n ~map:f ~init:0.0 ~combine:( +. )
      in
      checkb "float sum bit-identical" true
        (Int64.equal (Int64.bits_of_float !serial) (Int64.bits_of_float parallel)))

let test_exception_propagates () =
  Pool.with_pool ~jobs:4 (fun pool ->
      checkb "body exception reaches the caller" true
        (try
           Pool.parallel_for pool ~n:64 (fun i ->
               if i = 13 then failwith "boom");
           false
         with Failure m -> m = "boom"))

let test_nested_calls_run_serially () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let totals =
        Pool.map_array pool ~n:8 (fun i ->
            (* Inner operation on the same pool: must degrade to a serial
               loop instead of deadlocking on the worker rendezvous. *)
            Pool.map_reduce pool ~n:10 ~map:(fun j -> (10 * i) + j) ~init:0
              ~combine:( + ))
      in
      Alcotest.(check (array int))
        "nested reductions correct"
        (Array.init 8 (fun i -> (100 * i) + 45))
        totals)

let test_jobs_clamped () =
  Pool.with_pool ~jobs:0 (fun pool -> checki "jobs >= 1" 1 (Pool.jobs pool))

let test_shutdown_degrades_to_serial () =
  let pool = Pool.create ~jobs:3 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* idempotent *)
  let a = Pool.map_array pool ~n:10 (fun i -> 2 * i) in
  Alcotest.(check (array int)) "still correct" (Array.init 10 (fun i -> 2 * i)) a

let test_default_pool () =
  Pool.set_default_jobs 3;
  checki "width taken" 3 (Pool.default_jobs ());
  checki "pool has it" 3 (Pool.jobs (Pool.default ()));
  Pool.set_default_jobs 1;
  checki "reset" 1 (Pool.default_jobs ())

(* The repo-wide promise behind `--jobs`: a harness table is the same
   string at any pool width. recovery-latency fans 25 trials x 4 sizes
   through Pool.map_array. *)
let test_harness_table_parity () =
  let run () =
    match Registry.find "recovery-latency" with
    | Some e -> e.Registry.run ()
    | None -> Alcotest.fail "recovery-latency experiment missing"
  in
  Pool.set_default_jobs 1;
  let serial = run () in
  Pool.set_default_jobs 4;
  let parallel = run () in
  Pool.set_default_jobs 1;
  checks "table identical at jobs=4" serial parallel

(* The same promise for the observability layer: a metrics snapshot
   assembled from per-probe registries across 4 domains must be
   *identical* to the serial one — structurally and as exported bytes.
   Metrics.merge is commutative/associative and the pool reduces in index
   order, so any divergence here is a real nondeterminism bug. *)
let test_metrics_snapshot_parity () =
  let serial = Pool.with_pool ~jobs:1 (fun pool -> Exp_average.merged_metrics ~pool ~p:4) in
  let parallel = Pool.with_pool ~jobs:4 (fun pool -> Exp_average.merged_metrics ~pool ~p:4) in
  checkb "snapshots structurally equal" true (Metrics.equal serial parallel);
  checks "prometheus bytes identical at jobs=4"
    (Export.prometheus serial)
    (Export.prometheus parallel);
  checks "json bytes identical at jobs=4" (Export.json serial)
    (Export.json parallel)

let suite =
  [
    Alcotest.test_case "parallel_for covers every index once" `Quick
      test_parallel_for_covers_all;
    Alcotest.test_case "map_array is ordered" `Quick test_map_array_ordered;
    Alcotest.test_case "map_list matches List.map" `Quick test_map_list;
    Alcotest.test_case "map_reduce float sum is bit-identical" `Quick
      test_map_reduce_float_bits;
    Alcotest.test_case "body exceptions propagate" `Quick
      test_exception_propagates;
    Alcotest.test_case "nested pool calls run serially" `Quick
      test_nested_calls_run_serially;
    Alcotest.test_case "jobs clamped to >= 1" `Quick test_jobs_clamped;
    Alcotest.test_case "shutdown degrades to serial" `Quick
      test_shutdown_degrades_to_serial;
    Alcotest.test_case "default pool width" `Quick test_default_pool;
    Alcotest.test_case "harness table identical at jobs=4" `Quick
      test_harness_table_parity;
    Alcotest.test_case "metrics snapshot identical at jobs=4" `Quick
      test_metrics_snapshot_parity;
  ]
