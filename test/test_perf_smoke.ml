(* Perf smoke tests: cheap, deterministic guards against hot-path
   regressions.

   Two kinds of check:

   - laziness: with tracing off (or an unread trace), the network layer
     must never invoke the payload printer — verified by counting calls,
     not by timing;
   - complexity shape: the indexed operations must beat the naive O(N)
     scans they replaced by a wide margin — verified by relative timing
     against a baseline reimplemented here, with a deliberately generous
     threshold (the real gap is orders of magnitude) so CI noise cannot
     flip the verdict. *)

open Ocube_mutex
module Engine = Ocube_sim.Engine
module Rng = Ocube_sim.Rng
module Trace = Ocube_sim.Trace
module Fdeque = Ocube_sim.Fdeque
module Opencube = Ocube_topology.Opencube

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* A payload whose printer counts invocations: any eager [Format] work on
   the trace path shows up as a nonzero count. *)
module Counting = struct
  let pp_calls = ref 0

  type t = Ping of int

  let pp ppf (Ping k) =
    incr pp_calls;
    Format.fprintf ppf "ping(%d)" k

  let category _ = "ping"
end

module Net = Ocube_net.Network.Make (Counting)

let make_net ?trace () =
  let engine = Engine.create () in
  let net =
    Net.create ~engine ~rng:(Rng.create 1) ?trace ~n:4
      ~delay:(Ocube_net.Network.Constant 1.0) ()
  in
  (engine, net)

let test_trace_off_formats_nothing () =
  Counting.pp_calls := 0;
  let engine, net = make_net () in
  let received = ref 0 in
  Net.set_handler net 1 (fun ~src:_ _ -> incr received);
  for k = 1 to 50 do
    Net.send net ~src:0 ~dst:1 (Counting.Ping k)
  done;
  Engine.run engine;
  checki "all delivered" 50 !received;
  checki "no Format calls with tracing off" 0 !Counting.pp_calls

let test_trace_off_drop_path_formats_nothing () =
  (* Regression for the drop path: the scheduled closure used to format
     the payload for the "node down" record even with tracing off. The
     handler and the counter must keep working without any formatting. *)
  Counting.pp_calls := 0;
  let engine, net = make_net () in
  let dropped_seen = ref [] in
  Net.set_drop_handler net (fun ~dst payload -> dropped_seen := (dst, payload) :: !dropped_seen);
  Net.fail net 3;
  Net.send net ~src:0 ~dst:3 (Counting.Ping 9);
  Engine.run engine;
  (match !dropped_seen with
  | [ (3, Counting.Ping 9) ] -> ()
  | _ -> Alcotest.fail "drop handler did not fire");
  checki "dropped counter" 1 (Net.dropped_total net);
  checki "no Format calls on the drop path" 0 !Counting.pp_calls

let test_trace_on_formats_only_when_read () =
  Counting.pp_calls := 0;
  let trace = Trace.create () in
  let engine, net = make_net ~trace () in
  Net.set_handler net 1 (fun ~src:_ _ -> ());
  for k = 1 to 10 do
    Net.send net ~src:0 ~dst:1 (Counting.Ping k)
  done;
  Engine.run engine;
  checki "recording alone renders nothing" 0 !Counting.pp_calls;
  checki "entries were recorded" 20 (Trace.length trace) (* 10 send + 10 recv *);
  (* The trace's own laziness counters agree with the payload counter:
     all thunks pending, none forced. *)
  checki "thunks recorded" 20 (Trace.thunk_count trace);
  checki "nothing forced yet" 0 (Trace.forced_count trace);
  checki "all pending" 20 (Trace.pending_thunks trace);
  ignore (Trace.render trace);
  let after_first_read = !Counting.pp_calls in
  checkb "reading the trace renders details" true (after_first_read > 0);
  checki "forcing is observable" 20 (Trace.forced_count trace);
  checki "none left pending" 0 (Trace.pending_thunks trace);
  ignore (Trace.render trace);
  checki "details are memoized across reads" after_first_read !Counting.pp_calls;
  checki "memoized reads do not re-force" 20 (Trace.forced_count trace)

(* Regression: Trace.clear used to drop the entries but keep the
   thunk/forced counters, so a reused trace reported phantom pending
   thunks and the laziness assertions above broke on the second
   workload. A cleared trace must be indistinguishable from a fresh
   one. *)
let test_trace_clear_resets_laziness_counters () =
  Counting.pp_calls := 0;
  let trace = Trace.create () in
  let engine, net = make_net ~trace () in
  Net.set_handler net 1 (fun ~src:_ _ -> ());
  for k = 1 to 5 do
    Net.send net ~src:0 ~dst:1 (Counting.Ping k)
  done;
  Engine.run engine;
  ignore (Trace.render trace);
  checkb "counters are hot before the clear" true
    (Trace.thunk_count trace > 0 && Trace.forced_count trace > 0);
  Trace.clear trace;
  checki "no entries" 0 (Trace.length trace);
  checki "thunk counter reset" 0 (Trace.thunk_count trace);
  checki "forced counter reset" 0 (Trace.forced_count trace);
  checki "pending reset" 0 (Trace.pending_thunks trace);
  (* The cleared trace keeps working as a fresh one. *)
  Counting.pp_calls := 0;
  for k = 1 to 3 do
    Net.send net ~src:0 ~dst:1 (Counting.Ping k)
  done;
  Engine.run engine;
  checki "fresh thunks counted from zero" 6 (Trace.thunk_count trace);
  checki "still lazy after a clear" 0 !Counting.pp_calls

(* With tracing off the send path must allocate only its fixed engine
   bookkeeping (the payload box, the scheduled delivery closure, the
   event-queue slot) — no trace thunks, no format buffers. Minor-word
   deltas are exact in OCaml, so a per-send word budget is a
   deterministic guard, not a timing heuristic: re-introducing even one
   eager closure on the disabled path raises the count, and an eager
   [Format.asprintf] (~hundreds of words) trips it immediately. *)
let test_trace_off_send_allocation_budget () =
  let measure ?trace () =
    let engine, net = make_net ?trace () in
    Net.set_handler net 1 (fun ~src:_ _ -> ());
    (* warm-up: first send pays one-off lazy initialisation *)
    Net.send net ~src:0 ~dst:1 (Counting.Ping 0);
    let before = Gc.minor_words () in
    for k = 1 to 1000 do
      Net.send net ~src:0 ~dst:1 (Counting.Ping k)
    done;
    let per_send = (Gc.minor_words () -. before) /. 1000.0 in
    Engine.run engine;
    per_send
  in
  let off = measure () in
  let on = measure ~trace:(Trace.create ()) () in
  checkb "tracing off allocates strictly less per send than tracing on" true
    (off < on);
  checkb
    (Printf.sprintf
       "zero trace-attributable allocation growth with tracing off (%.1f \
        words/send, budget 64)"
       off)
    true (off <= 64.0)

(* --- trace on/off equivalence -------------------------------------------- *)

(* Same seed, same workload, tracing on vs off: laziness must not change
   the simulation — identical CS entry order and message counts. *)
let run_workload ~trace =
  let engine = Engine.create () in
  let rng = Rng.create 11 in
  let tr = if trace then Some (Trace.create ()) else None in
  let net =
    Types.Net.create ~engine ~rng ?trace:tr ~n:16
      ~delay:(Ocube_net.Network.Uniform { lo = 0.5; hi = 2.0 })
      ()
  in
  let entered = ref [] in
  let algo = ref None in
  let callbacks =
    {
      Types.on_enter =
        (fun i ->
          entered := i :: !entered;
          ignore
            (Types.Net.set_timer net ~node:i ~delay:2.0 (fun () ->
                 Opencube_algo.release_cs (Option.get !algo) i)));
      on_exit = ignore;
    }
  in
  let a =
    Opencube_algo.create ~net ~callbacks
      ~config:
        { (Opencube_algo.default_config ~p:4) with fault_tolerance = false }
  in
  algo := Some a;
  List.iteri
    (fun k node ->
      ignore
        (Engine.schedule engine ~delay:(0.3 *. float_of_int k) (fun () ->
             Opencube_algo.request_cs a node)))
    [ 5; 9; 7; 3; 12; 0; 9; 14; 1; 7 ];
  Engine.run engine;
  (List.rev !entered, Types.Net.sent_total net)

let test_trace_off_vs_on_equivalence () =
  let order_off, sent_off = run_workload ~trace:false in
  let order_on, sent_on = run_workload ~trace:true in
  Alcotest.(check (list int)) "same CS order" order_off order_on;
  checki "same message count" sent_off sent_on;
  checkb "workload actually ran" true (List.length order_off >= 10)

(* --- complexity shape ----------------------------------------------------- *)

let time_best ~reps f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  !best

let test_last_son_beats_naive_scan () =
  let p = 14 in
  let c = Opencube.build ~p in
  let n = 1 lsl p in
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let i = Rng.int rng n in
    if Opencube.last_son c i <> None then Opencube.b_transform c i
  done;
  let nodes = Array.init 64 (fun k -> k * 251 mod n) in
  (* The O(N) scan the index replaced, over the public API. *)
  let naive_last_son i =
    let pi = Opencube.power c i in
    let best = ref None in
    for j = n - 1 downto 0 do
      if Opencube.father c j = Some i && Opencube.dist i j = pi then
        best := Some j
    done;
    !best
  in
  Array.iter
    (fun i ->
      Alcotest.(check (option int))
        "indexed last_son agrees with the scan" (naive_last_son i)
        (Opencube.last_son c i))
    nodes;
  let t_indexed =
    time_best ~reps:5 (fun () ->
        Array.iter (fun i -> ignore (Opencube.last_son c i)) nodes)
  in
  let t_naive =
    time_best ~reps:5 (fun () ->
        Array.iter (fun i -> ignore (naive_last_son i)) nodes)
  in
  checkb "indexed last_son at least 3x faster than the O(N) scan" true
    (t_naive > 3.0 *. t_indexed)

let test_deque_beats_list_append () =
  let n = 3000 in
  let t_deque =
    time_best ~reps:3 (fun () ->
        let q = ref Fdeque.empty in
        for k = 1 to n do
          q := Fdeque.push_back !q k
        done;
        let continue = ref true in
        while !continue do
          match Fdeque.pop_front !q with
          | Some (_, q') -> q := q'
          | None -> continue := false
        done)
  in
  let t_list =
    time_best ~reps:3 (fun () ->
        let q = ref [] in
        for k = 1 to n do
          q := !q @ [ k ]
        done;
        while !q <> [] do
          match !q with _ :: tl -> q := tl | [] -> ()
        done)
  in
  checkb "deque at least 3x faster than the quadratic list append" true
    (t_list > 3.0 *. t_deque)

let suite =
  [
    Alcotest.test_case "trace off: send formats nothing" `Quick
      test_trace_off_formats_nothing;
    Alcotest.test_case "trace off: drop path formats nothing" `Quick
      test_trace_off_drop_path_formats_nothing;
    Alcotest.test_case "trace on: formatting deferred until read" `Quick
      test_trace_on_formats_only_when_read;
    Alcotest.test_case "Trace.clear resets the laziness counters" `Quick
      test_trace_clear_resets_laziness_counters;
    Alcotest.test_case "trace off: per-send allocation budget holds" `Quick
      test_trace_off_send_allocation_budget;
    Alcotest.test_case "trace on/off runs are equivalent" `Quick
      test_trace_off_vs_on_equivalence;
    Alcotest.test_case "last_son beats the O(N) scan" `Quick
      test_last_son_beats_naive_scan;
    Alcotest.test_case "deque beats the quadratic list queue" `Quick
      test_deque_beats_list_append;
  ]
