(* The process runtime: DES↔process differential conformance (same
   automata, byte-identical per-node send sequences on serial crash-free
   workloads), cluster crash-recovery under real SIGKILL, and the merged
   -log oracle. Everything here forks real processes; node counts stay
   small (4–8) so the whole suite is a few seconds. *)

module Spec = Ocube_proc.Spec
module Cluster = Ocube_proc.Cluster
module Conformance = Ocube_proc.Conformance
module Metrics = Ocube_obs.Metrics
module Scenario = Ocube_check.Scenario
module Fuzz = Ocube_check.Fuzz

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let ok_or_fail what = function
  | Ok () -> ()
  | Error e -> Alcotest.fail (what ^ ": " ^ e)

(* --- DES <-> process conformance ----------------------------------------- *)

let conformance_cases =
  List.map
    (fun algo -> { Conformance.algo; p = 2; cs = 1.0; rounds = 2 })
    Spec.all
  @ [ { Conformance.algo = Spec.Opencube; p = 3; cs = 1.0; rounds = 1 } ]

let test_conformance () =
  List.iter
    (fun c ->
      ok_or_fail (Conformance.case_name c) (Conformance.check c))
    conformance_cases

let test_des_digests_stable () =
  (* the DES side of the differential is itself deterministic *)
  let c = { Conformance.algo = Spec.Opencube; p = 2; cs = 1.0; rounds = 2 } in
  let a = Conformance.des_digests c in
  let b = Conformance.des_digests c in
  Array.iteri
    (fun i d -> Alcotest.(check string) (Printf.sprintf "node %d" i) d b.(i))
    a

let test_proc_digests_stable () =
  (* crash-free lockstep cluster runs replay bit-identically too *)
  let c = { Conformance.algo = Spec.Central; p = 2; cs = 1.0; rounds = 2 } in
  let a = Conformance.proc_digests c in
  let b = Conformance.proc_digests c in
  Array.iteri
    (fun i d -> Alcotest.(check string) (Printf.sprintf "node %d" i) d b.(i))
    a

(* --- plain cluster runs --------------------------------------------------- *)

let test_cluster_closed_loop () =
  let o =
    Cluster.run
      {
        (Cluster.default_config ~algo:Spec.Opencube ~p:2) with
        workload = Cluster.Closed_loop { per_node = 2 };
      }
  in
  ok_or_fail "closed loop" (Cluster.oracle_clean o);
  checki "wishes" 8 o.Cluster.wishes;
  checki "served all" 8 o.Cluster.served;
  checki "entries = served" o.Cluster.served o.Cluster.entries;
  checki "nothing abandoned" 0 o.Cluster.abandoned;
  checkb "metrics snapshot present" true (Option.is_some o.Cluster.snapshot);
  match o.Cluster.snapshot with
  | None -> ()
  | Some s ->
    checki "metrics entries" o.Cluster.entries
      (Metrics.total_of s "cluster_entries");
    checki "metrics wishes" o.Cluster.wishes
      (Metrics.total_of s "cluster_wishes")

let test_cluster_log_shape () =
  let o =
    Cluster.run
      {
        (Cluster.default_config ~algo:Spec.Central ~p:2) with
        workload = Cluster.Lockstep { rounds = 1 };
      }
  in
  ok_or_fail "lockstep" (Cluster.oracle_clean o);
  (* merged log: every enter is preceded by its wish and followed by its
     exit, and CS intervals never interleave in receipt order *)
  let open_cs = ref None in
  List.iter
    (fun (_, ev) ->
      match ev with
      | Cluster.Ev_enter i ->
        (match !open_cs with
        | None -> open_cs := Some i
        | Some j ->
          Alcotest.failf "enter %d while %d still in CS in merged log" i j)
      | Cluster.Ev_exit i -> (
        match !open_cs with
        | Some j when j = i -> open_cs := None
        | _ -> Alcotest.fail "exit without matching enter")
      | _ -> ())
    o.Cluster.events;
  checkb "log closes" true (Option.is_none !open_cs)

(* --- crash recovery under real SIGKILL ------------------------------------ *)

let ft_config ~p ~kills ~per_node =
  {
    (Cluster.default_config ~algo:Spec.Opencube ~p) with
    params = { (Spec.default_params ~p) with ft = true };
    workload = Cluster.Closed_loop { per_node };
    kills;
    (* fast clock: recovery timeouts are a few delta, i.e. well under a
       second of wall time at this tick *)
    tick = 0.02;
    cs = 2.0;
    deadline = 25.0;
  }

(* N=8, kill the token holder mid-CS on its first entry; the survivors
   must re-elect a father, regenerate the token and drain every
   remaining wish before the deadline. *)
let test_kill_leader_mid_cs () =
  let o = Cluster.run (ft_config ~p:3 ~kills:[ Cluster.Kill_leader 1 ] ~per_node:1) in
  ok_or_fail "kill leader" (Cluster.oracle_clean o);
  checki "exactly one kill" 1 (List.length o.Cluster.killed);
  checkb "the killed node had entered" true
    (List.exists
       (fun (_, ev) ->
         match ev with
         | Cluster.Ev_enter i -> List.mem i o.Cluster.killed
         | _ -> false)
       o.Cluster.events);
  (* its wish died with it; everyone else's was served *)
  checki "abandoned" 1 o.Cluster.abandoned;
  checki "served" (o.Cluster.wishes - 1) o.Cluster.served

let test_kill_cascade () =
  let o =
    Cluster.run
      (ft_config ~p:3
         ~kills:
           [
             Cluster.Kill_at { after = 0.3; node = 1 };
             Cluster.Kill_at { after = 0.8; node = 5 };
           ]
         ~per_node:2)
  in
  ok_or_fail "cascade" (Cluster.oracle_clean o);
  checki "two kills" 2 (List.length o.Cluster.killed);
  checkb "survivors drained" true o.Cluster.drained

(* --- fuzzing the process runtime ------------------------------------------ *)

let proc_opts =
  { Scenario.default_opts with Scenario.runtime = Scenario.Proc; max_p = 2 }

(* Short soak: generated scenarios — crashy ones included — forked as real
   clusters under the oracle. The CLI equivalent is
   [ocmutex fuzz --runtime proc]. *)
let test_proc_fuzz_soak () =
  let report = Fuzz.campaign ~opts:proc_opts ~iters:6 ~fuzz_seed:5 () in
  checki "all scenarios ran" 6 report.Fuzz.ran;
  match report.Fuzz.failure with
  | None -> ()
  | Some f ->
    Alcotest.failf "scenario %d violated %S: %s" f.Fuzz.index f.Fuzz.error
      (Scenario.to_string f.Fuzz.scenario)

let test_proc_scripts_replayable () =
  (* proc scenarios round-trip through the one-line script format ... *)
  let s = Scenario.of_index ~fuzz_seed:13 ~index:0 ~opts:proc_opts in
  checkb "generated as proc" true (s.Scenario.runtime = Scenario.Proc);
  (match Scenario.of_string (Scenario.to_string s) with
  | Error e -> Alcotest.failf "proc script unparseable: %s" e
  | Ok s' ->
    Alcotest.(check string)
      "round trip" (Scenario.to_string s) (Scenario.to_string s'));
  (* ... every shrink candidate stays a valid proc scenario ... *)
  List.iter
    (fun (c : Scenario.t) ->
      checkb "shrink keeps runtime" true (c.Scenario.runtime = Scenario.Proc);
      match Scenario.validate c with
      | Ok () -> ()
      | Error e -> Alcotest.failf "invalid shrink candidate: %s" e)
    (Scenario.shrink_candidates s);
  (* ... and corpus lines from before the runtime field default to des *)
  match
    Scenario.of_string
      "algo=central p=2 seed=0 delay=constant:1 cs=fixed:1 ft=false \
       patience=1 lifo=false serial=true arrivals=- faults=-"
  with
  | Error e -> Alcotest.failf "legacy script unparseable: %s" e
  | Ok s -> checkb "legacy defaults to des" true (s.Scenario.runtime = Scenario.Des)

let suite =
  [
    Alcotest.test_case "DES and process send digests agree" `Quick
      test_conformance;
    Alcotest.test_case "DES digests stable" `Quick test_des_digests_stable;
    Alcotest.test_case "process digests stable" `Quick
      test_proc_digests_stable;
    Alcotest.test_case "closed-loop cluster drains clean" `Quick
      test_cluster_closed_loop;
    Alcotest.test_case "merged log is well-formed" `Quick
      test_cluster_log_shape;
    Alcotest.test_case "kill -9 token holder mid-CS recovers" `Quick
      test_kill_leader_mid_cs;
    Alcotest.test_case "cascading kills recover" `Quick test_kill_cascade;
    Alcotest.test_case "fuzz soak on the process runtime" `Quick
      test_proc_fuzz_soak;
    Alcotest.test_case "proc scripts shrink and replay" `Quick
      test_proc_scripts_replayable;
  ]
