(* Tests for static trees (Raymond substrate) and the hypercube module. *)

module Static_tree = Ocube_topology.Static_tree
module Hypercube = Ocube_topology.Opencube.Hypercube

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let test_path () =
  let t = Static_tree.build Static_tree.Path ~n:5 in
  Alcotest.(check (array (option int)))
    "fathers"
    [| None; Some 0; Some 1; Some 2; Some 3 |]
    t;
  checki "diameter" 4 (Static_tree.diameter t);
  checki "height" 4 (Static_tree.height t)

let test_star () =
  let t = Static_tree.build Static_tree.Star ~n:6 in
  checki "diameter" 2 (Static_tree.diameter t);
  checki "height" 1 (Static_tree.height t);
  Alcotest.(check (list int)) "root neighbors" [ 1; 2; 3; 4; 5 ]
    (Static_tree.neighbors t 0)

let test_kary () =
  let t = Static_tree.build (Static_tree.Kary 2) ~n:7 in
  Alcotest.(check (option int)) "father of 3" (Some 1) t.(3);
  Alcotest.(check (option int)) "father of 6" (Some 2) t.(6);
  checki "height of complete binary 7" 2 (Static_tree.height t)

let test_binomial_matches_opencube () =
  let t = Static_tree.build Static_tree.Binomial ~n:16 in
  let c = Ocube_topology.Opencube.build ~p:4 in
  for i = 0 to 15 do
    Alcotest.(check (option int))
      (Printf.sprintf "node %d" i)
      (Ocube_topology.Opencube.father c i)
      t.(i)
  done;
  checki "binomial diameter is 2 log n - 1-ish" 7 (Static_tree.diameter t)

let test_binomial_requires_power_of_two () =
  Alcotest.check_raises "n=6"
    (Invalid_argument "Static_tree.build: Binomial requires a power of two")
    (fun () -> ignore (Static_tree.build Static_tree.Binomial ~n:6))

let test_validate () =
  checkb "path ok" true
    (Static_tree.validate (Static_tree.build Static_tree.Path ~n:4) = Ok ());
  checkb "no root" true
    (Static_tree.validate [| Some 1; Some 0 |] <> Ok ());
  checkb "two roots" true (Static_tree.validate [| None; None |] <> Ok ())

let test_depth_of () =
  let t = Static_tree.build (Static_tree.Kary 2) ~n:15 in
  checki "leaf depth" 3 (Static_tree.depth_of t 14);
  checki "root depth" 0 (Static_tree.depth_of t 0)

let test_singleton () =
  let t = Static_tree.build Static_tree.Path ~n:1 in
  checki "diameter" 0 (Static_tree.diameter t);
  checki "height" 0 (Static_tree.height t)

(* --- hypercube --------------------------------------------------------- *)

let test_hypercube_neighbors () =
  Alcotest.(check (list int)) "neighbors of 0 in Q3" [ 1; 2; 4 ]
    (Hypercube.neighbors ~p:3 0);
  Alcotest.(check (list int)) "neighbors of 5 in Q3" [ 1; 4; 7 ]
    (Hypercube.neighbors ~p:3 5)

let test_hypercube_edge_count () =
  (* Qp has p * 2^(p-1) edges. *)
  List.iter
    (fun p ->
      checki
        (Printf.sprintf "edges of Q%d" p)
        (p * (1 lsl (p - 1)))
        (List.length (Hypercube.edges ~p)))
    [ 1; 2; 3; 4; 5; 6 ]

let test_hypercube_hamming () =
  checki "hamming 0 7" 3 (Hypercube.hamming 0 7);
  checki "hamming 5 5" 0 (Hypercube.hamming 5 5);
  checkb "is_edge" true (Hypercube.is_edge 4 6);
  checkb "not edge" false (Hypercube.is_edge 3 0)

let suite =
  [
    Alcotest.test_case "path shape" `Quick test_path;
    Alcotest.test_case "star shape" `Quick test_star;
    Alcotest.test_case "k-ary shape" `Quick test_kary;
    Alcotest.test_case "binomial = initial open-cube" `Quick
      test_binomial_matches_opencube;
    Alcotest.test_case "binomial size validation" `Quick
      test_binomial_requires_power_of_two;
    Alcotest.test_case "tree validation" `Quick test_validate;
    Alcotest.test_case "depth_of" `Quick test_depth_of;
    Alcotest.test_case "singleton tree" `Quick test_singleton;
    Alcotest.test_case "hypercube neighbors" `Quick test_hypercube_neighbors;
    Alcotest.test_case "hypercube edge count" `Quick test_hypercube_edge_count;
    Alcotest.test_case "hamming distance" `Quick test_hypercube_hamming;
  ]
