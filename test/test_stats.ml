(* Tests for the statistics substrate: summaries, histograms, tables,
   series. *)

open Ocube_stats

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 1e-9))
let checkf3 = Alcotest.(check (float 1e-3))

(* --- summary ------------------------------------------------------------- *)

let test_summary_basic () =
  let s = Summary.create () in
  List.iter (Summary.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  checki "count" 8 (Summary.count s);
  checkf "mean" 5.0 (Summary.mean s);
  checkf "min" 2.0 (Summary.min_value s);
  checkf "max" 9.0 (Summary.max_value s);
  checkf "total" 40.0 (Summary.total s);
  (* Sample variance of this classic dataset is 4.571428... *)
  checkf3 "variance" 4.5714285 (Summary.variance s)

let test_summary_empty () =
  let s = Summary.create () in
  checkb "mean is nan" true (Float.is_nan (Summary.mean s));
  checkb "variance is nan" true (Float.is_nan (Summary.variance s));
  checki "count" 0 (Summary.count s)

let test_summary_single () =
  let s = Summary.create () in
  Summary.add s 42.0;
  checkf "mean" 42.0 (Summary.mean s);
  checkb "variance undefined" true (Float.is_nan (Summary.variance s))

let test_summary_merge () =
  let a = Summary.create () and b = Summary.create () and all = Summary.create () in
  let r = Ocube_sim.Rng.create 3 in
  for _ = 1 to 500 do
    let v = Ocube_sim.Rng.float r 10.0 in
    Summary.add all v;
    if Ocube_sim.Rng.bool r then Summary.add a v else Summary.add b v
  done;
  let m = Summary.merge a b in
  checki "count" (Summary.count all) (Summary.count m);
  checkf3 "mean" (Summary.mean all) (Summary.mean m);
  checkf3 "variance" (Summary.variance all) (Summary.variance m);
  checkf "min" (Summary.min_value all) (Summary.min_value m);
  checkf "max" (Summary.max_value all) (Summary.max_value m)

let test_summary_merge_with_empty () =
  let a = Summary.create () and b = Summary.create () in
  Summary.add a 1.0;
  Summary.add a 3.0;
  let m = Summary.merge a b in
  checki "count" 2 (Summary.count m);
  checkf "mean" 2.0 (Summary.mean m)

let test_summary_ci () =
  let s = Summary.create () in
  for i = 1 to 100 do
    Summary.add s (float_of_int (i mod 10))
  done;
  let hw = Summary.ci95_halfwidth s in
  checkb "ci is positive and finite" true (hw > 0.0 && Float.is_finite hw)

(* --- histogram ------------------------------------------------------------ *)

let test_histogram_counts () =
  let h = Histogram.create () in
  List.iter (Histogram.add h) [ 3; 1; 3; 5; 3; 1 ];
  checki "total" 6 (Histogram.count h);
  checki "count of 3" 3 (Histogram.count_of h 3);
  checki "count of 2" 0 (Histogram.count_of h 2);
  Alcotest.(check (option int)) "min" (Some 1) (Histogram.min_value h);
  Alcotest.(check (option int)) "max" (Some 5) (Histogram.max_value h);
  checkf3 "mean" (16.0 /. 6.0) (Histogram.mean h);
  Alcotest.(check (list (pair int int)))
    "sorted"
    [ (1, 2); (3, 3); (5, 1) ]
    (Histogram.to_sorted_list h)

let test_histogram_percentiles () =
  let h = Histogram.create () in
  for v = 1 to 100 do
    Histogram.add h v
  done;
  checki "p50" 50 (Histogram.percentile h 50.0);
  checki "p99" 99 (Histogram.percentile h 99.0);
  checki "p100" 100 (Histogram.percentile h 100.0);
  checki "p1" 1 (Histogram.percentile h 1.0)

let test_histogram_percentile_empty () =
  let h = Histogram.create () in
  Alcotest.check_raises "empty"
    (Invalid_argument "Histogram.percentile: empty histogram") (fun () ->
      ignore (Histogram.percentile h 50.0))

let test_histogram_merge_basic () =
  let a = Histogram.create () and b = Histogram.create () in
  List.iter (Histogram.add a) [ 1; 2; 2 ];
  List.iter (Histogram.add b) [ 2; 7 ];
  let m = Histogram.merge a b in
  checki "total" 5 (Histogram.count m);
  checki "counts add" 3 (Histogram.count_of m 2);
  (* merge is a fresh histogram: the inputs are untouched *)
  checki "left input intact" 3 (Histogram.count a);
  checki "right input intact" 2 (Histogram.count b);
  checkb "equal to pooled" true
    (let pooled = Histogram.create () in
     List.iter (Histogram.add pooled) [ 1; 2; 2; 2; 7 ];
     Histogram.equal m pooled)

let test_histogram_render () =
  let h = Histogram.create () in
  Histogram.add_many h 2 10;
  Histogram.add h 7;
  let s = Histogram.render h in
  checkb "mentions 2" true (Tutil.contains s "2");
  checkb "has bars" true (Tutil.contains s "#")

(* --- table ----------------------------------------------------------------- *)

let test_table_render () =
  let t =
    Table.create ~title:"T" ~columns:[ ("name", Table.Left); ("v", Table.Right) ] ()
  in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_separator t;
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  checkb "title" true (Tutil.contains s "T");
  checkb "header" true (Tutil.contains s "| name");
  checkb "row" true (Tutil.contains s "alpha");
  checkb "right aligned" true (Tutil.contains s "| 22 |");
  (* all lines same width *)
  let lines = String.split_on_char '\n' (String.trim s) in
  let widths = List.map String.length (List.tl lines) in
  List.iter (fun w -> checki "width uniform" (List.hd widths) w) widths

let test_table_arity_check () =
  let t = Table.create ~columns:[ ("a", Table.Left) ] () in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> Table.add_row t [ "x"; "y" ])

let test_table_formatters () =
  Alcotest.(check string) "float" "3.14" (Table.fmt_float ~decimals:2 3.14159);
  Alcotest.(check string) "nan" "-" (Table.fmt_float nan);
  Alcotest.(check string) "int" "42" (Table.fmt_int 42);
  Alcotest.(check string) "ratio" "2.00x" (Table.fmt_ratio 4.0 2.0);
  Alcotest.(check string) "ratio by zero" "-" (Table.fmt_ratio 4.0 0.0)

(* --- series ----------------------------------------------------------------- *)

let test_series_linear_fit () =
  let s = Series.create ~name:"line" in
  List.iter (fun x -> Series.add s ~x ~y:((3.0 *. x) +. 1.0)) [ 0.; 1.; 2.; 3.; 4. ];
  let slope, intercept = Series.linear_fit s in
  checkf3 "slope" 3.0 slope;
  checkf3 "intercept" 1.0 intercept;
  checkf3 "r2 of exact fit" 1.0
    (Series.r_squared s ~predicted:(fun x -> (3.0 *. x) +. 1.0))

let test_series_errors () =
  let s = Series.create ~name:"e" in
  Series.add s ~x:1.0 ~y:10.0;
  Series.add s ~x:2.0 ~y:20.0;
  let mre = Series.mean_relative_error s ~predicted:(fun x -> 10.0 *. x) in
  checkf3 "perfect prediction" 0.0 mre;
  let mre2 = Series.max_relative_error s ~predicted:(fun x -> 20.0 *. x) in
  checkf3 "off by 2x" 0.5 mre2

let test_series_fit_needs_points () =
  let s = Series.create ~name:"few" in
  Series.add s ~x:1.0 ~y:1.0;
  Alcotest.check_raises "one point"
    (Invalid_argument "Series.linear_fit: need at least two points") (fun () ->
      ignore (Series.linear_fit s))

let qcheck_tests =
  let open QCheck in
  [
    Test.make ~count:300 ~name:"summary mean within [min,max]"
      (list_of_size (Gen.int_range 1 100) (float_range (-1000.0) 1000.0))
      (fun xs ->
        let s = Summary.create () in
        List.iter (Summary.add s) xs;
        Summary.mean s >= Summary.min_value s -. 1e-9
        && Summary.mean s <= Summary.max_value s +. 1e-9);
    Test.make ~count:300 ~name:"merge is order-insensitive"
      (pair
         (list_of_size (Gen.int_range 1 50) (float_range (-100.0) 100.0))
         (list_of_size (Gen.int_range 1 50) (float_range (-100.0) 100.0)))
      (fun (xs, ys) ->
        let s1 = Summary.create () and s2 = Summary.create () in
        List.iter (Summary.add s1) xs;
        List.iter (Summary.add s2) ys;
        let a = Summary.merge s1 s2 and b = Summary.merge s2 s1 in
        Float.abs (Summary.mean a -. Summary.mean b) < 1e-9
        && Summary.count a = Summary.count b);
    Test.make ~count:300 ~name:"histogram percentile is monotone"
      (list_of_size (Gen.int_range 1 80) (int_range 0 50))
      (fun xs ->
        let h = Histogram.create () in
        List.iter (Histogram.add h) xs;
        Histogram.percentile h 25.0 <= Histogram.percentile h 75.0);
    Test.make ~count:300 ~name:"histogram merge commutes and preserves counts"
      (pair
         (list_of_size (Gen.int_range 0 60) (int_range 0 40))
         (list_of_size (Gen.int_range 0 60) (int_range 0 40)))
      (fun (xs, ys) ->
        let of_list vs =
          let h = Histogram.create () in
          List.iter (Histogram.add h) vs;
          h
        in
        let a = of_list xs and b = of_list ys in
        let m = Histogram.merge a b in
        Histogram.count m = List.length xs + List.length ys
        && Histogram.equal m (Histogram.merge b a)
        && Histogram.equal m (of_list (xs @ ys)));
    Test.make ~count:200 ~name:"histogram merge is associative"
      (triple
         (list_of_size (Gen.int_range 0 40) (int_range 0 30))
         (list_of_size (Gen.int_range 0 40) (int_range 0 30))
         (list_of_size (Gen.int_range 0 40) (int_range 0 30)))
      (fun (xs, ys, zs) ->
        let of_list vs =
          let h = Histogram.create () in
          List.iter (Histogram.add h) vs;
          h
        in
        let a = of_list xs and b = of_list ys and c = of_list zs in
        Histogram.equal
          (Histogram.merge (Histogram.merge a b) c)
          (Histogram.merge a (Histogram.merge b c)));
    Test.make ~count:300
      ~name:"histogram percentile is monotone in q and consistent with the \
             sorted list"
      (pair
         (list_of_size (Gen.int_range 1 80) (int_range 0 50))
         (pair (float_range 0.0 100.0) (float_range 0.0 100.0)))
      (fun (xs, (q1, q2)) ->
        let h = Histogram.create () in
        List.iter (Histogram.add h) xs;
        let lo = Float.min q1 q2 and hi = Float.max q1 q2 in
        let monotone = Histogram.percentile h lo <= Histogram.percentile h hi in
        (* percentile must return a recorded value, and sweep the whole
           support: p100 is the max of the expanded sorted list, p>0
           values appear in it. *)
        let sorted = Histogram.to_sorted_list h in
        let mem v = List.exists (fun (x, _) -> x = v) sorted in
        monotone
        && mem (Histogram.percentile h hi)
        && Histogram.percentile h 100.0
           = fst (List.nth sorted (List.length sorted - 1)));
  ]

let suite =
  [
    Alcotest.test_case "summary basic stats" `Quick test_summary_basic;
    Alcotest.test_case "summary empty" `Quick test_summary_empty;
    Alcotest.test_case "summary single value" `Quick test_summary_single;
    Alcotest.test_case "summary merge = pooled" `Quick test_summary_merge;
    Alcotest.test_case "summary merge with empty" `Quick
      test_summary_merge_with_empty;
    Alcotest.test_case "summary confidence interval" `Quick test_summary_ci;
    Alcotest.test_case "histogram counts" `Quick test_histogram_counts;
    Alcotest.test_case "histogram percentiles" `Quick
      test_histogram_percentiles;
    Alcotest.test_case "histogram percentile on empty" `Quick
      test_histogram_percentile_empty;
    Alcotest.test_case "histogram merge pools counts" `Quick
      test_histogram_merge_basic;
    Alcotest.test_case "histogram rendering" `Quick test_histogram_render;
    Alcotest.test_case "table rendering" `Quick test_table_render;
    Alcotest.test_case "table arity check" `Quick test_table_arity_check;
    Alcotest.test_case "table cell formatters" `Quick test_table_formatters;
    Alcotest.test_case "series linear fit" `Quick test_series_linear_fit;
    Alcotest.test_case "series error measures" `Quick test_series_errors;
    Alcotest.test_case "series fit arity" `Quick test_series_fit_needs_points;
  ]
  @ List.map (fun t -> QCheck_alcotest.to_alcotest ~long:false t) qcheck_tests
