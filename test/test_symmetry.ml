(* Tests for the open-cube automorphism group and state canonicalization:
   group structure against brute-force enumeration of all dist-preserving
   permutations, canonicalization properties (idempotence, generator
   invariance, isomorphic decodes), and exhaustive orbit sizes at small p. *)

module Spec = Ocube_model.Spec
module Symmetry = Ocube_model.Symmetry

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- brute force over S_n -------------------------------------------------- *)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        List.map
          (fun rest -> x :: rest)
          (permutations (List.filter (fun y -> y <> x) l)))
      l

(* Every dist-preserving permutation of [0 .. 2^p - 1], by filtering all
   of S_n — the ground truth the generated group must match. *)
let brute_force_group p =
  let n = 1 lsl p in
  permutations (List.init n Fun.id)
  |> List.map Array.of_list
  |> List.filter (Symmetry.is_automorphism ~p)

let perm_to_string a =
  String.concat "," (List.map string_of_int (Array.to_list a))

(* --- group structure ------------------------------------------------------- *)

let test_group_orders () =
  List.iter
    (fun (p, expect) ->
      let t = Symmetry.table ~p in
      checki (Printf.sprintf "order at p=%d" p) expect (Symmetry.order t);
      checkb "full group" true (Symmetry.is_exact t))
    [ (0, 1); (1, 2); (2, 8); (3, 128) ];
  (* 2^(2^4 - 1) = 32768 blows the cap: translation-subgroup fallback. *)
  let t4 = Symmetry.table ~p:4 in
  checki "fallback order at p=4" 16 (Symmetry.order t4);
  checkb "fallback is not exact" true (not (Symmetry.is_exact t4))

let test_group_equals_brute_force () =
  List.iter
    (fun p ->
      let t = Symmetry.table ~p in
      let brute =
        List.sort_uniq String.compare
          (List.map perm_to_string (brute_force_group p))
      in
      let table =
        List.sort_uniq String.compare
          (List.init (Symmetry.order t) (fun k ->
               perm_to_string (Symmetry.perm t k)))
      in
      checki
        (Printf.sprintf "brute-force count at p=%d" p)
        (List.length brute) (List.length table);
      checkb
        (Printf.sprintf "same set at p=%d" p)
        true
        (List.equal String.equal brute table))
    [ 0; 1; 2; 3 ]

let test_group_laws () =
  let t = Symmetry.table ~p:3 in
  let n = 8 in
  let id = Array.init n Fun.id in
  checkb "element 0 is the identity" true (Symmetry.perm t 0 = id);
  for a = 0 to Symmetry.order t - 1 do
    checki "a . a^-1 = id" 0 (Symmetry.compose t a (Symmetry.inverse t a));
    checki "a^-1 . a = id" 0 (Symmetry.compose t (Symmetry.inverse t a) a);
    let b = (a * 37) mod Symmetry.order t in
    let ab = Symmetry.compose t a b in
    let pa = Symmetry.perm t a
    and pb = Symmetry.perm t b in
    let expect = Array.init n (fun i -> pa.(pb.(i))) in
    checkb "compose matches array composition" true
      (Symmetry.perm t ab = expect)
  done

let test_generators_are_automorphisms () =
  List.iter
    (fun p ->
      List.iter
        (fun g ->
          checkb
            (Printf.sprintf "generator at p=%d" p)
            true
            (Symmetry.is_automorphism ~p g))
        (Symmetry.generators ~p))
    [ 1; 2; 3; 4 ]

let test_bit_permutations_are_trivial () =
  (* Genuine bit shuffles preserve dist only when they are the identity:
     dist 0 (1 lsl b) = b + 1 pins every bit. Check all 6 bit shuffles
     at p=3. *)
  let p = 3 in
  let shuffles = permutations [ 0; 1; 2 ] in
  let surviving =
    List.filter
      (fun sigma ->
        let s = Array.of_list sigma in
        let a =
          Array.init 8 (fun i ->
              let r = ref 0 in
              for b = 0 to 2 do
                if i land (1 lsl b) <> 0 then r := !r lor (1 lsl s.(b))
              done;
              !r)
        in
        Symmetry.is_automorphism ~p a)
      shuffles
  in
  checki "only the identity bit-permutation survives" 1
    (List.length surviving)

(* --- canonicalization ------------------------------------------------------ *)

(* Seeded random walk through the (optionally faulty) transition graph. *)
let random_walk ?(max_faults = 0) ~seed ~p ~wishes ~steps () =
  let rng = Ocube_sim.Rng.create seed in
  let st = ref (Spec.initial ~p ~wishes) in
  let acc = ref [ !st ] in
  (try
     for _ = 1 to steps do
       match Spec.transitions ~max_faults !st with
       | [] -> raise Exit
       | ts ->
         let _, st' = List.nth ts (Ocube_sim.Rng.int rng (List.length ts)) in
         st := st';
         acc := st' :: !acc
     done
   with Exit -> ());
  !acc

let walk_states seed =
  let p = 1 + (seed mod 3) in
  let faults = if seed mod 2 = 0 then 1 else 0 in
  random_walk ~max_faults:faults ~seed ~p ~wishes:2 ~steps:16 ()

let qcheck_canon_tests =
  let open QCheck in
  [
    Test.make ~count:80 ~name:"canonicalization is idempotent"
      (int_range 0 100_000)
      (fun seed ->
        List.for_all
          (fun st ->
            let p = Spec.num_nodes st |> fun n ->
              let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
              log2 n
            in
            let t = Symmetry.table ~p in
            let c = Symmetry.canonicalize t st in
            let c' = Symmetry.canonicalize t (Spec.decode c.Symmetry.key) in
            String.equal c'.Symmetry.key c.Symmetry.key
            && c'.Symmetry.perm_index = 0
            && c'.Symmetry.orbit = c.Symmetry.orbit)
          (walk_states seed));
    Test.make ~count:80 ~name:"canonical key invariant under every generator"
      (int_range 0 100_000)
      (fun seed ->
        List.for_all
          (fun st ->
            let n = Spec.num_nodes st in
            let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
            let p = log2 n in
            let t = Symmetry.table ~p in
            let c = Symmetry.canonicalize t st in
            List.for_all
              (fun g ->
                let c' = Symmetry.canonicalize t (Spec.relabel g st) in
                String.equal c'.Symmetry.key c.Symmetry.key
                && c'.Symmetry.orbit = c.Symmetry.orbit)
              (Symmetry.generators ~p))
          (walk_states seed));
    Test.make ~count:80
      ~name:"canonical key decodes to the recorded relabeling"
      (int_range 0 100_000)
      (fun seed ->
        List.for_all
          (fun st ->
            let n = Spec.num_nodes st in
            let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
            let p = log2 n in
            let t = Symmetry.table ~p in
            let c = Symmetry.canonicalize t st in
            let sigma = Symmetry.perm t c.Symmetry.perm_index in
            Symmetry.is_automorphism ~p sigma
            && Spec.decode c.Symmetry.key = Spec.relabel sigma st)
          (walk_states seed));
    Test.make ~count:40 ~name:"dynamics are equivariant under the group"
      (int_range 0 100_000)
      (fun seed ->
        (* transitions (relabel g st) = g-image of transitions st, as
           sets — the soundness theorem behind the quotient search. *)
        List.for_all
          (fun st ->
            let n = Spec.num_nodes st in
            let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
            let p = log2 n in
            let t = Symmetry.table ~p in
            let k = 1 + (seed mod max 1 (Symmetry.order t - 1)) in
            let g = Symmetry.perm t k in
            let image =
              List.map
                (fun (tr, st') ->
                  (Symmetry.apply_transition t k tr, Spec.relabel g st'))
                (Spec.transitions ~max_faults:1 st)
            in
            let direct = Spec.transitions ~max_faults:1 (Spec.relabel g st) in
            List.length image = List.length direct
            && List.for_all (fun x -> List.mem x direct) image)
          (walk_states seed));
  ]

(* Exhaustive orbit check at p <= 2: the orbit size reported by
   [canonicalize] equals the number of distinct keys under *all*
   dist-preserving relabelings of S_n. *)
let test_orbit_sizes_exhaustive () =
  List.iter
    (fun p ->
      let group = brute_force_group p in
      let t = Symmetry.table ~p in
      List.iter
        (fun seed ->
          List.iter
            (fun st ->
              let c = Symmetry.canonicalize t st in
              let keys =
                List.sort_uniq String.compare
                  (List.map (fun g -> Spec.encode (Spec.relabel g st)) group)
              in
              checki
                (Printf.sprintf "orbit size (p=%d seed=%d)" p seed)
                (List.length keys) c.Symmetry.orbit;
              checkb "canonical key is the orbit minimum" true
                (String.equal (List.hd keys) c.Symmetry.key))
            (random_walk ~max_faults:(seed mod 2) ~seed ~p ~wishes:2
               ~steps:12 ()))
        [ 1; 2; 3; 4; 5; 6 ])
    [ 1; 2 ]

let test_orbit_divides_order () =
  let t = Symmetry.table ~p:3 in
  List.iter
    (fun seed ->
      List.iter
        (fun st ->
          let c = Symmetry.canonicalize t st in
          checki "Lagrange: orbit divides group order" 0
            (Symmetry.order t mod c.Symmetry.orbit))
        (random_walk ~max_faults:1 ~seed ~p:3 ~wishes:1 ~steps:12 ()))
    [ 1; 2; 3 ]

let suite =
  [
    ("group orders", `Quick, test_group_orders);
    ("group equals brute force (p<=3)", `Quick, test_group_equals_brute_force);
    ("group laws", `Quick, test_group_laws);
    ("generators are automorphisms", `Quick, test_generators_are_automorphisms);
    ("bit permutations are trivial", `Quick, test_bit_permutations_are_trivial);
    ("orbit sizes vs brute force (p<=2)", `Quick, test_orbit_sizes_exhaustive);
    ("orbit divides group order", `Quick, test_orbit_divides_order);
  ]
  @ List.map
      (fun t -> QCheck_alcotest.to_alcotest ~long:false t)
      qcheck_canon_tests
