(* The timing wheel checked against the heap oracle.

   The engine's determinism contract says both queue disciplines fire
   events in the identical global (time, seq) order. The tests here
   attack the places where the wheel's bucketing could break that:
   events landing exactly on L0/L1/L2 span boundaries, cascades,
   overflow pulls, cancellation at every level, re-entrant scheduling
   from handlers, the degenerate far-future mode, and [run ~until]
   push-back. A qcheck property drives randomized schedule/cancel/nested
   scripts through both schedulers and demands bit-identical fire logs,
   and a small fuzz campaign does the same end-to-end through the full
   protocol stack. *)

module Engine = Ocube_sim.Engine
module Fuzz = Ocube_check.Fuzz

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)
let checks = Alcotest.(check string)

(* Default wheel tick is 0.25; levels are 256 buckets wide, so the level
   spans in virtual time are 64.0 (L0), 16384.0 (L1) and 4194304.0 (L2).
   Delays beyond the L2 span land in the overflow heap. *)
let l0_span = 64.0

let l1_span = 16384.0

let l2_span = 4194304.0

(* Boundary-heavy delays: one tick on either side of every level span,
   plus ties and zero. All exactly representable, so logs compare
   bit-identically. *)
let boundary_delays =
  [
    0.0;
    0.25;
    0.25;
    0.5;
    l0_span -. 0.25;
    l0_span;
    l0_span;
    l0_span +. 0.25;
    l1_span -. 0.25;
    l1_span;
    l1_span +. 0.25;
    l2_span -. 0.25;
    l2_span;
    l2_span +. 0.25;
    (2.0 *. l2_span) +. 3.25;
  ]

(* --- fire-order parity ----------------------------------------------------- *)

let run_delays sched delays =
  let e = Engine.create ~sched () in
  let b = Buffer.create 256 in
  List.iteri
    (fun i d ->
      ignore
        (Engine.schedule e ~delay:d (fun () ->
             Printf.bprintf b "%d@%h;" i (Engine.now e))))
    delays;
  Engine.run e;
  checki "all fired" 0 (Engine.pending e);
  Buffer.contents b

let test_boundary_fire_order () =
  checks "identical fire log at level boundaries"
    (run_delays Engine.Heap boundary_delays)
    (run_delays Engine.Wheel boundary_delays)

(* Re-entrant scheduling: handlers scheduling at zero delay (same
   instant, must still respect seq FIFO) and across the next boundary. *)
let run_nested sched =
  let e = Engine.create ~sched () in
  let b = Buffer.create 256 in
  let log tag = Printf.bprintf b "%s@%h;" tag (Engine.now e) in
  ignore
    (Engine.schedule e ~delay:63.75 (fun () ->
         log "outer";
         (* same instant: fires after already-queued same-time events *)
         ignore (Engine.schedule e ~delay:0.0 (fun () -> log "nested0"));
         (* one tick ahead: crosses the L0 bucket being drained *)
         ignore (Engine.schedule e ~delay:0.25 (fun () -> log "nested1"));
         ignore (Engine.schedule e ~delay:l1_span (fun () -> log "nestedL1"))));
  ignore (Engine.schedule e ~delay:63.75 (fun () -> log "tie"));
  ignore (Engine.schedule e ~delay:l0_span (fun () -> log "l0span"));
  Engine.run e;
  Buffer.contents b

let test_nested_fire_order () =
  checks "identical fire log with re-entrant schedules"
    (run_nested Engine.Heap) (run_nested Engine.Wheel)

(* Far-future degenerate mode: times so large the wheel parks and serves
   everything from its exact near-heap. Order must still match. *)
let run_astronomical sched =
  let e = Engine.create ~sched () in
  let b = Buffer.create 128 in
  let log tag = Printf.bprintf b "%s;" tag in
  ignore (Engine.schedule_at e ~time:1e300 (fun () -> log "huge-a"));
  ignore (Engine.schedule_at e ~time:1e300 (fun () -> log "huge-b"));
  ignore
    (Engine.schedule_at e ~time:1e299 (fun () ->
         log "first";
         ignore (Engine.schedule_at e ~time:1e301 (fun () -> log "later"))));
  ignore (Engine.schedule e ~delay:1.0 (fun () -> log "near"));
  Engine.run e;
  Buffer.contents b

let test_astronomical_times () =
  let want = "near;first;huge-a;huge-b;later;" in
  checks "heap order" want (run_astronomical Engine.Heap);
  checks "wheel order" want (run_astronomical Engine.Wheel)

(* --- cancellation ---------------------------------------------------------- *)

(* Cancel one event at every wheel level and in the overflow; only the
   survivors fire, and [pending] is exact throughout. *)
let test_cancel_every_level () =
  List.iter
    (fun sched ->
      let e = Engine.create ~sched () in
      let fired = ref [] in
      let mk d = Engine.schedule e ~delay:d (fun () -> fired := d :: !fired) in
      let near = mk 0.25 in
      let l0 = mk 32.0 in
      let l1 = mk 1000.0 in
      let l2 = mk 100000.0 in
      let ovf = mk (3.0 *. l2_span) in
      let keep0 = 33.0 and keep1 = 1001.0 in
      ignore (mk keep0);
      ignore (mk keep1);
      checki "pending before cancels" 7 (Engine.pending e);
      List.iter (Engine.cancel e) [ near; l0; l1; l2; ovf ];
      checki "pending after cancels" 2 (Engine.pending e);
      (* double-cancel is a no-op *)
      Engine.cancel e l1;
      checki "pending after double cancel" 2 (Engine.pending e);
      Engine.run e;
      checki "pending after run" 0 (Engine.pending e);
      checkb "survivors fired in order" true
        (match List.rev !fired with
        | [ a; b ] -> Float.equal a keep0 && Float.equal b keep1
        | _ -> false))
    [ Engine.Heap; Engine.Wheel ]

(* A stale id must stay dead after its arena slot is reused. *)
let test_stale_id_after_reuse () =
  List.iter
    (fun sched ->
      let e = Engine.create ~sched () in
      let n = ref 0 in
      let old_id = Engine.schedule e ~delay:1.0 (fun () -> incr n) in
      Engine.cancel e old_id;
      (* the freed slot is recycled by the next schedule *)
      let fresh = Engine.schedule e ~delay:2.0 (fun () -> incr n) in
      Engine.cancel e old_id;
      (* must not kill the recycled slot *)
      checki "recycled event still pending" 1 (Engine.pending e);
      Engine.run e;
      checki "recycled event fired" 1 !n;
      Engine.cancel e fresh (* post-fire cancel is a no-op *))
    [ Engine.Heap; Engine.Wheel ]

(* Cancel-then-reschedule exactly on bucket boundaries: the replacement
   must fire at its own time, never the cancelled one's. *)
let test_reschedule_at_boundaries () =
  List.iter
    (fun sched ->
      List.iter
        (fun d ->
          let e = Engine.create ~sched () in
          let fired = ref nan in
          let id = Engine.schedule e ~delay:d (fun () -> fired := -1.0) in
          Engine.cancel e id;
          ignore
            (Engine.schedule e ~delay:(d +. 0.25) (fun () ->
                 fired := Engine.now e));
          Engine.run e;
          checkb
            (Printf.sprintf "rescheduled fire time for delay %g" d)
            true
            (Float.equal !fired (d +. 0.25)))
        [ 0.25; l0_span; l1_span; l2_span ])
    [ Engine.Heap; Engine.Wheel ]

(* --- run ~until push-back -------------------------------------------------- *)

let test_run_until_pushback () =
  List.iter
    (fun sched ->
      let e = Engine.create ~sched () in
      let b = Buffer.create 64 in
      let log tag = Printf.bprintf b "%s@%g;" tag (Engine.now e) in
      ignore (Engine.schedule e ~delay:10.0 (fun () -> log "early"));
      ignore (Engine.schedule e ~delay:1000.0 (fun () -> log "far"));
      Engine.run ~until:50.0 e;
      checkb "clock parked at until" true (Float.equal (Engine.now e) 50.0);
      checki "far event still pending" 1 (Engine.pending e);
      (* a nearer event scheduled after the pause must overtake the
         pushed-back one *)
      ignore (Engine.schedule e ~delay:10.0 (fun () -> log "mid"));
      Engine.run e;
      checks "order across the pause" "early@10;mid@60;far@1000;"
        (Buffer.contents b))
    [ Engine.Heap; Engine.Wheel ]

(* --- packed events --------------------------------------------------------- *)

let test_packed_parity () =
  let run sched =
    let e = Engine.create ~sched () in
    let b = Buffer.create 128 in
    let cls =
      Engine.register_class e (fun a x -> Printf.bprintf b "%d:%d;" a x)
    in
    List.iteri
      (fun i d -> ignore (Engine.schedule_packed e ~delay:d ~cls ~a:i ~b:(2 * i)))
      boundary_delays;
    Engine.run e;
    Buffer.contents b
  in
  checks "identical packed fire log" (run Engine.Heap) (run Engine.Wheel)

(* Steady-state packed schedule/fire must not allocate on the minor heap:
   the whole point of the arena encoding is a closure-free hot path. The
   budget (a tenth of a word per event) only absorbs the measurement's
   own boxed [Gc.minor_words] results. *)
let test_packed_zero_alloc () =
  let e = Engine.create ~sched:Engine.Wheel () in
  let acc = ref 0 in
  let cls = Engine.register_class e (fun a b -> acc := !acc + a + b) in
  let burst () =
    for i = 1 to 1024 do
      ignore (Engine.schedule_packed e ~delay:3.0 ~cls ~a:i ~b:1)
    done;
    Engine.run e
  in
  (* warm-up grows the arena and the wheel to steady state *)
  burst ();
  burst ();
  let before = Gc.minor_words () in
  burst ();
  let per_event = (Gc.minor_words () -. before) /. 1024.0 in
  checkb
    (Printf.sprintf "allocation-free schedule/fire (%.2f words/event)"
       per_event)
    true (per_event <= 0.1)

(* --- qcheck: randomized script parity -------------------------------------- *)

type item = { delay : float; nested : float list; cancel : int option }

(* Delays as small multiples of an eighth keep every sum exactly
   representable; the boundary list salts in the level-span edges. *)
let delay_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> float_of_int i /. 8.0) (int_bound 2048);
        oneofl boundary_delays;
      ])

let script_gen =
  QCheck.Gen.(
    int_range 1 24 >>= fun n ->
    list_size (return n)
      (map3
         (fun delay nested cancel -> { delay; nested; cancel })
         delay_gen
         (list_size (int_bound 3) delay_gen)
         (opt (int_bound (n - 1)))))

let script_print script =
  String.concat " "
    (List.mapi
       (fun i it ->
         Printf.sprintf "%d:{d=%h nested=[%s]%s}" i it.delay
           (String.concat "," (List.map (Printf.sprintf "%h") it.nested))
           (match it.cancel with
           | Some j -> Printf.sprintf " cancel=%d" j
           | None -> ""))
       script)

(* Interpret a script: schedule every item up front, then let each
   firing log itself, spawn its nested events and cancel its victim.
   Everything that could diverge between schedulers — bucketing, ties,
   cascade timing, tombstone handling — funnels into the log. *)
let run_script sched script =
  let items = Array.of_list script in
  let e = Engine.create ~sched () in
  let b = Buffer.create 512 in
  let ids = Array.make (Array.length items) None in
  Array.iteri
    (fun i it ->
      ids.(i) <-
        Some
          (Engine.schedule e ~delay:it.delay (fun () ->
               Printf.bprintf b "%d@%h;" i (Engine.now e);
               List.iteri
                 (fun j d ->
                   ignore
                     (Engine.schedule e ~delay:d (fun () ->
                          Printf.bprintf b "%d.%d@%h;" i j (Engine.now e))))
                 it.nested;
               match it.cancel with
               | Some j -> (
                 match ids.(j) with
                 | Some id -> Engine.cancel e id
                 | None -> ())
               | None -> ())))
    items;
  Engine.run e;
  checki "quiescent after script" 0 (Engine.pending e);
  Buffer.contents b

let qcheck_script_parity =
  QCheck.Test.make ~count:300 ~name:"wheel/heap fire-log parity on scripts"
    (QCheck.make ~print:script_print script_gen)
    (fun script ->
      String.equal (run_script Engine.Heap script)
        (run_script Engine.Wheel script))

(* --- end-to-end: fuzz campaign checksum parity ----------------------------- *)

(* The full protocol stack (all algorithms, faults, delay models) run
   under each scheduler must produce the same in-order digest checksum.
   CI runs the 10k-scenario version of this; here a slice guards the
   property in the default test tier. *)
let test_fuzz_checksum_parity () =
  let run sched =
    Engine.set_default_scheduler sched;
    Fun.protect
      ~finally:(fun () -> Engine.set_default_scheduler Engine.Wheel)
      (fun () -> Fuzz.campaign ~iters:250 ~fuzz_seed:90210 ())
  in
  let w = run Engine.Wheel in
  let h = run Engine.Heap in
  checkb "no wheel failure" true (w.Fuzz.failure = None);
  checkb "no heap failure" true (h.Fuzz.failure = None);
  checki "same scenario count" w.Fuzz.ran h.Fuzz.ran;
  checki "same digest checksum across schedulers" w.Fuzz.checksum
    h.Fuzz.checksum

let suite =
  [
    Alcotest.test_case "boundary fire order" `Quick test_boundary_fire_order;
    Alcotest.test_case "nested fire order" `Quick test_nested_fire_order;
    Alcotest.test_case "astronomical times" `Quick test_astronomical_times;
    Alcotest.test_case "cancel at every level" `Quick test_cancel_every_level;
    Alcotest.test_case "stale id after slot reuse" `Quick
      test_stale_id_after_reuse;
    Alcotest.test_case "reschedule at boundaries" `Quick
      test_reschedule_at_boundaries;
    Alcotest.test_case "run ~until push-back" `Quick test_run_until_pushback;
    Alcotest.test_case "packed fire parity" `Quick test_packed_parity;
    Alcotest.test_case "packed zero-alloc" `Quick test_packed_zero_alloc;
    Alcotest.test_case "fuzz checksum parity" `Quick test_fuzz_checksum_parity;
  ]
  @ [ QCheck_alcotest.to_alcotest ~long:false qcheck_script_parity ]
