(* Wire codec and transport framing: qcheck round-trips of every message
   constructor, length-prefixed framing over a real socketpair (short
   writes, partial reads), torn frames at every split point through the
   incremental decoder, and oversized-length rejection on both the
   blocking and the incremental paths. *)

module Types = Ocube_mutex.Types
module Message = Types.Message
module Wire = Ocube_mutex.Wire
module Frame = Ocube_proc.Frame

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- generators ---------------------------------------------------------- *)

let gen_id =
  (* small ids dominate real traffic; the full int range exercises
     multi-byte zigzag varints including both extremes *)
  QCheck.Gen.(
    frequency
      [ (6, small_signed_int); (3, int); (1, oneofl [ min_int; max_int; 0 ]) ])

let gen_rid =
  QCheck.Gen.map2 (fun source seq -> { Types.source; seq }) gen_id gen_id

let gen_msg =
  let open QCheck.Gen in
  oneof
    [
      map2 (fun origin rid -> Message.Request { origin; rid }) gen_id gen_rid;
      map2
        (fun lender rid -> Message.Token { lender; rid })
        (option gen_id) (option gen_rid);
      map (fun rid -> Message.Enquiry { rid }) gen_rid;
      map2
        (fun rid answer -> Message.Enquiry_answer { rid; answer })
        gen_rid
        (oneofl [ Types.In_cs; Types.Token_sent; Types.Token_lost ]);
      map (fun d -> Message.Test { d }) gen_id;
      map2
        (fun d answer -> Message.Test_answer { d; answer })
        gen_id
        (oneofl [ Types.Father_ok; Types.Holder_ok; Types.Try_later ]);
      map (fun rid -> Message.Anomaly { rid }) gen_rid;
      map (fun rid -> Message.Void { rid }) gen_rid;
      map (fun round -> Message.Census { round }) gen_id;
      map2
        (fun round reply -> Message.Census_reply { round; reply })
        gen_id
        (oneofl [ Types.Token_exists; Types.Census_defer ]);
      return Message.Release;
      map2 (fun origin seq -> Message.Sk_request { origin; seq }) gen_id gen_id;
      map2
        (fun queue ln -> Message.Sk_privilege { queue; ln = Array.of_list ln })
        (small_list gen_id) (small_list gen_id);
      map2
        (fun origin clock -> Message.Ra_request { origin; clock })
        gen_id gen_id;
      return Message.Ra_reply;
    ]

let arb_msg = QCheck.make ~print:(Fmt.to_to_string Message.pp) gen_msg

let msg_equal a b =
  (a = b) [@ocube.lint.allow "no-poly-compare"]

(* --- codec round-trip ----------------------------------------------------- *)

let qcheck_roundtrip =
  QCheck.Test.make ~name:"wire decode (encode m) = m" ~count:2000 arb_msg
    (fun m -> msg_equal (Wire.decode (Wire.encode m)) m)

let qcheck_canonical =
  (* self-delimiting + whole-string decode: appending any byte breaks it *)
  QCheck.Test.make ~name:"wire rejects trailing bytes" ~count:500
    QCheck.(pair arb_msg (0 -- 255))
    (fun (m, b) ->
      let s = Wire.encode m ^ String.make 1 (Char.chr b) in
      match Wire.decode s with
      | _ -> false
      | exception Wire.Corrupt _ -> true)

let qcheck_truncation =
  QCheck.Test.make ~name:"wire rejects every truncation" ~count:500 arb_msg
    (fun m ->
      let s = Wire.encode m in
      let ok = ref true in
      for i = 0 to String.length s - 1 do
        (match Wire.decode (String.sub s 0 i) with
        | _ -> ok := false
        | exception Wire.Corrupt _ -> ());
        ()
      done;
      !ok)

let test_mix_matches_mix_raw () =
  let m = Message.Release in
  let a = Wire.mix "" ~dst:3 m in
  let b = Wire.mix_raw "" ~dst:3 (Wire.encode m) in
  Alcotest.(check string) "mix = mix_raw . encode" a b;
  checkb "fold order matters" false
    (String.equal
       (Wire.mix a ~dst:1 (Message.Census { round = 1 }))
       (Wire.mix a ~dst:2 (Message.Census { round = 1 })))

(* --- framing: torn frames at every split point --------------------------- *)

let sample_payloads =
  [
    Wire.encode Message.Release;
    Wire.encode (Message.Request { origin = 5; rid = { source = 5; seq = 9 } });
    "";
    String.make 300 'x';
    Wire.encode (Message.Sk_privilege { queue = [ 1; 2; 3 ]; ln = [| 7; 8 |] });
  ]

let frame_bytes payload =
  let b = Buffer.create 64 in
  Buffer.add_char b (Char.chr (String.length payload lsr 24 land 0xff));
  Buffer.add_char b (Char.chr (String.length payload lsr 16 land 0xff));
  Buffer.add_char b (Char.chr (String.length payload lsr 8 land 0xff));
  Buffer.add_char b (Char.chr (String.length payload land 0xff));
  Buffer.add_string b payload;
  Buffer.contents b

let drain dec =
  let rec go acc =
    match Frame.Decoder.next dec with
    | Some f -> go (f :: acc)
    | None -> List.rev acc
  in
  go []

let test_decoder_every_split () =
  let stream = String.concat "" (List.map frame_bytes sample_payloads) in
  for split = 0 to String.length stream do
    let dec = Frame.Decoder.create () in
    Frame.Decoder.feed dec stream 0 split;
    let early = drain dec in
    Frame.Decoder.feed dec stream split (String.length stream - split);
    let late = drain dec in
    let got = early @ late in
    checki
      (Printf.sprintf "frame count at split %d" split)
      (List.length sample_payloads)
      (List.length got);
    List.iter2
      (fun want have -> Alcotest.(check string) "payload" want have)
      sample_payloads got;
    checki "no residue" 0 (Frame.Decoder.buffered dec)
  done

let test_decoder_byte_at_a_time () =
  let stream = String.concat "" (List.map frame_bytes sample_payloads) in
  let dec = Frame.Decoder.create () in
  let got = ref [] in
  String.iteri
    (fun i _ ->
      Frame.Decoder.feed dec stream i 1;
      got := !got @ drain dec)
    stream;
  checki "all frames" (List.length sample_payloads) (List.length !got)

let test_decoder_oversized () =
  let dec = Frame.Decoder.create () in
  let bad = frame_bytes "" in
  (* pretend the empty payload is 2 MiB long *)
  let bad = "\x00\x20\x00\x01" ^ String.sub bad 4 (String.length bad - 4) in
  Frame.Decoder.feed dec bad 0 (String.length bad);
  Alcotest.check_raises "oversized length" (Frame.Corrupt "bad frame length")
    (fun () -> ignore (Frame.Decoder.next dec));
  let neg = Frame.Decoder.create () in
  Frame.Decoder.feed neg "\xff\xff\xff\xff" 0 4;
  Alcotest.check_raises "negative length" (Frame.Corrupt "bad frame length")
    (fun () -> ignore (Frame.Decoder.next neg))

let test_write_oversized () =
  let r, w = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      Unix.close r;
      Unix.close w)
    (fun () ->
      checkb "Oversized raised" true
        (match Frame.write w (String.make (Frame.max_frame + 1) 'x') with
        | () -> false
        | exception Frame.Oversized _ -> true))

(* --- framing over a real socketpair -------------------------------------- *)

let test_socketpair_roundtrip () =
  let r, w = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      List.iter (fun p -> Frame.write w p) sample_payloads;
      List.iter
        (fun want ->
          match Frame.read r with
          | Some have -> Alcotest.(check string) "frame" want have
          | None -> Alcotest.fail "early EOF")
        sample_payloads;
      Unix.close w;
      checkb "EOF at boundary is None" true (match Frame.read r with None -> true | Some _ -> false))

let test_socketpair_short_writes () =
  (* the writer dribbles one byte per syscall; the blocking reader must
     reassemble exactly the same frames *)
  let r, w = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      (* single-byte writes each cost the kernel a whole skb of buffer
         accounting, so the dribbled stream must stay small to fit the
         socket buffer without a concurrent reader *)
      let dribbled =
        [
          Wire.encode Message.Release;
          "";
          Wire.encode
            (Message.Request { origin = 5; rid = { source = 5; seq = 9 } });
          "hello";
        ]
      in
      let stream = String.concat "" (List.map frame_bytes dribbled) in
      String.iter
        (fun ch -> ignore (Unix.write w (Bytes.make 1 ch) 0 1))
        stream;
      Unix.close w;
      List.iter
        (fun want ->
          match Frame.read r with
          | Some have -> Alcotest.(check string) "frame" want have
          | None -> Alcotest.fail "early EOF")
        dribbled;
      checkb "clean EOF" true (match Frame.read r with None -> true | Some _ -> false))

let test_torn_stream_is_corrupt () =
  let r, w = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      try Unix.close w with Unix.Unix_error _ -> ())
    (fun () ->
      let full = frame_bytes (String.make 32 'y') in
      let cut = String.length full / 2 in
      ignore (Unix.write_substring w full 0 cut);
      Unix.close w;
      checkb "torn frame raises Corrupt" true
        (match Frame.read r with
        | _ -> false
        | exception Frame.Corrupt _ -> true))

let suite =
  [
    Alcotest.test_case "mix agrees with mix_raw" `Quick test_mix_matches_mix_raw;
    Alcotest.test_case "decoder survives every split point" `Quick
      test_decoder_every_split;
    Alcotest.test_case "decoder byte-at-a-time" `Quick
      test_decoder_byte_at_a_time;
    Alcotest.test_case "decoder rejects oversized length" `Quick
      test_decoder_oversized;
    Alcotest.test_case "write rejects oversized payload" `Quick
      test_write_oversized;
    Alcotest.test_case "socketpair round-trip + boundary EOF" `Quick
      test_socketpair_roundtrip;
    Alcotest.test_case "short writes reassemble" `Quick
      test_socketpair_short_writes;
    Alcotest.test_case "torn stream is Corrupt" `Quick
      test_torn_stream_is_corrupt;
  ]
  @ List.map
      (fun t -> QCheck_alcotest.to_alcotest ~long:false t)
      [ qcheck_roundtrip; qcheck_canonical; qcheck_truncation ]
