(* Tests for workload generation and the runner. *)

module Arrivals = Ocube_workload.Arrivals
module Faults = Ocube_workload.Faults
module Rng = Ocube_sim.Rng
open Ocube_mutex

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

(* --- arrivals ------------------------------------------------------------- *)

let is_sorted l =
  let rec go = function
    | (a, _) :: ((b, _) :: _ as tl) -> a <= b && go tl
    | _ -> true
  in
  go l

let test_poisson_sorted_and_bounded () =
  let rng = Rng.create 1 in
  let a = Arrivals.poisson ~rng ~n:8 ~rate_per_node:0.1 ~horizon:500.0 in
  checkb "sorted" true (is_sorted a);
  List.iter
    (fun (t, node) ->
      checkb "time in horizon" true (t >= 0.0 && t < 500.0);
      checkb "node in range" true (node >= 0 && node < 8))
    a

let test_poisson_rate_roughly_right () =
  let rng = Rng.create 2 in
  let a = Arrivals.poisson ~rng ~n:10 ~rate_per_node:0.05 ~horizon:10_000.0 in
  (* expectation: 10 * 0.05 * 10000 = 5000 *)
  let c = Arrivals.count a in
  checkb (Printf.sprintf "count %d near 5000" c) true (c > 4600 && c < 5400)

let test_poisson_deterministic () =
  let a = Arrivals.poisson ~rng:(Rng.create 3) ~n:4 ~rate_per_node:0.1 ~horizon:100.0 in
  let b = Arrivals.poisson ~rng:(Rng.create 3) ~n:4 ~rate_per_node:0.1 ~horizon:100.0 in
  checkb "same schedule from same seed" true (a = b)

let test_hotspot_skew () =
  let rng = Rng.create 4 in
  let a =
    Arrivals.hotspot ~rng ~n:8 ~hot:[ 0 ] ~hot_rate:0.1 ~cold_rate:0.001
      ~horizon:5000.0
  in
  let hot = List.length (List.filter (fun (_, n) -> n = 0) a) in
  let cold = List.length (List.filter (fun (_, n) -> n <> 0) a) in
  checkb
    (Printf.sprintf "hot %d >> cold-per-node %d" hot (cold / 7))
    true
    (hot > 10 * (cold / 7))

let test_serial_each_node_once () =
  let a = Arrivals.serial_each_node_once ~n:4 ~gap:10.0 in
  Alcotest.(check (list (pair (float 1e-9) int)))
    "schedule"
    [ (10.0, 0); (20.0, 1); (30.0, 2); (40.0, 3) ]
    a

let test_merge_sorts () =
  let a = Arrivals.merge [ (5.0, 1) ] [ (1.0, 2); (9.0, 3) ] in
  checkb "sorted" true (is_sorted a);
  checki "count" 3 (Arrivals.count a)

(* --- faults ---------------------------------------------------------------- *)

let test_faults_random_spacing () =
  let rng = Rng.create 5 in
  let f =
    Faults.random ~rng ~n:8 ~count:10 ~start:100.0 ~spacing:50.0
      ~recover_after:(Some 20.0) ()
  in
  checki "count" 10 (Faults.count f);
  List.iteri
    (fun k e ->
      Alcotest.(check (float 1e-9))
        "spacing"
        (100.0 +. (float_of_int k *. 50.0))
        e.Faults.at)
    f

let test_faults_avoid () =
  let rng = Rng.create 6 in
  let f =
    Faults.random ~rng ~n:4 ~count:50 ~start:0.0 ~spacing:1.0 ~recover_after:None
      ~avoid:[ 0; 1 ] ()
  in
  List.iter
    (fun e -> checkb "avoided" true (e.Faults.node = 2 || e.Faults.node = 3))
    f

let test_faults_zero_count () =
  let rng = Rng.create 9 in
  let f =
    Faults.random ~rng ~n:8 ~count:0 ~start:0.0 ~spacing:1.0 ~recover_after:None ()
  in
  checki "empty schedule" 0 (Faults.count f)

let test_faults_all_nodes_avoided_rejected () =
  let rng = Rng.create 9 in
  Alcotest.check_raises "no candidate left"
    (Invalid_argument "Faults.random: no node left to fail") (fun () ->
      ignore
        (Faults.random ~rng ~n:3 ~count:1 ~start:0.0 ~spacing:1.0
           ~recover_after:None ~avoid:[ 0; 1; 2 ] ()));
  Alcotest.check_raises "negative count"
    (Invalid_argument "Faults.random: negative count") (fun () ->
      ignore
        (Faults.random ~rng ~n:3 ~count:(-1) ~start:0.0 ~spacing:1.0
           ~recover_after:None ()))

let test_faults_single_candidate_repeats () =
  (* With one candidate left, the no-adjacent-duplicate rule must yield
     rather than spin forever. *)
  let rng = Rng.create 9 in
  let f =
    Faults.random ~rng ~n:4 ~count:5 ~start:0.0 ~spacing:1.0 ~recover_after:None
      ~avoid:[ 0; 1; 2 ] ()
  in
  checki "count" 5 (Faults.count f);
  List.iter (fun e -> checki "only candidate" 3 e.Faults.node) f

let test_faults_no_consecutive_repeat () =
  let rng = Rng.create 7 in
  let f =
    Faults.random ~rng ~n:8 ~count:100 ~start:0.0 ~spacing:1.0 ~recover_after:None ()
  in
  let rec go = function
    | a :: (b :: _ as tl) ->
      checkb "no immediate repeat" true (a.Faults.node <> b.Faults.node);
      go tl
    | _ -> ()
  in
  go f

(* --- runner ---------------------------------------------------------------- *)

let make_opencube ?(seed = 42) ?(cs = Runner.Fixed 2.0) p =
  let n = 1 lsl p in
  let env = Runner.make_env ~seed ~n ~delay:(Ocube_net.Network.Constant 1.0) ~cs () in
  let config = { (Opencube_algo.default_config ~p) with fault_tolerance = false } in
  let algo =
    Opencube_algo.create ~net:(Runner.net env) ~callbacks:(Runner.callbacks env)
      ~config
  in
  Runner.attach env (Opencube_algo.instance algo);
  env

let test_runner_backlog () =
  let env = make_opencube 3 in
  (* Three wishes at the same node: served one after the other. *)
  Runner.submit env 5;
  Runner.submit env 5;
  Runner.submit env 5;
  Runner.run_to_quiescence env;
  checki "issued counts resubmissions" 3 (Runner.issued env);
  checki "entries" 3 (Runner.cs_entries env);
  checki "outstanding" 0 (Runner.outstanding env)

let test_runner_wait_stats () =
  let env = make_opencube ~cs:(Runner.Fixed 5.0) 2 in
  Runner.run_arrivals env (Runner.Arrivals.burst ~nodes:[ 0; 1; 2; 3 ] ~at:1.0);
  Runner.run_to_quiescence env;
  let w = Runner.wait_stats env in
  checki "4 waits recorded" 4 (Ocube_stats.Summary.count w);
  (* The first (the root) waits 0; the last waits at least 3 CS durations. *)
  checkb "min wait ~0" true (Ocube_stats.Summary.min_value w < 0.5);
  checkb "max wait >= 15" true (Ocube_stats.Summary.max_value w >= 15.0)

let test_runner_exponential_cs () =
  let env =
    make_opencube ~cs:(Runner.Exponential { mean = 1.0; cap = 5.0 }) 3
  in
  let arrivals =
    Runner.Arrivals.poisson ~rng:(Runner.rng env) ~n:8 ~rate_per_node:0.05
      ~horizon:200.0
  in
  Runner.run_arrivals env arrivals;
  Runner.run_to_quiescence env;
  checki "violations" 0 (Runner.violations env);
  checki "outstanding" 0 (Runner.outstanding env)

let test_runner_wish_on_failed_node_dropped () =
  let n = 8 in
  let env = Runner.make_env ~seed:1 ~n ~delay:(Ocube_net.Network.Constant 1.0)
      ~cs:(Runner.Fixed 1.0) () in
  let config = Opencube_algo.default_config ~p:3 in
  let algo =
    Opencube_algo.create ~net:(Runner.net env) ~callbacks:(Runner.callbacks env)
      ~config
  in
  Runner.attach env (Opencube_algo.instance algo);
  Runner.schedule_faults env [ Runner.Faults.at 1.0 5 () ];
  Runner.run_arrivals env (Runner.Arrivals.single ~node:5 ~at:2.0);
  Runner.run_to_quiescence env;
  checki "nothing issued" 0 (Runner.issued env);
  checki "no entries" 0 (Runner.cs_entries env)

let run_traced seed =
  let n = 16 in
  let env = Runner.make_env ~seed ~n ~delay:(Ocube_net.Network.Uniform { lo = 0.2; hi = 2.0 })
      ~cs:(Runner.Exponential { mean = 1.0; cap = 4.0 }) ~trace:true () in
  let config = Opencube_algo.default_config ~p:4 in
  let algo =
    Opencube_algo.create ~net:(Runner.net env) ~callbacks:(Runner.callbacks env)
      ~config
  in
  Runner.attach env (Opencube_algo.instance algo);
  let arrivals =
    Runner.Arrivals.poisson ~rng:(Runner.rng env) ~n ~rate_per_node:0.01
      ~horizon:400.0
  in
  Runner.run_arrivals env arrivals;
  Runner.schedule_faults env
    [ Runner.Faults.at 100.0 5 ~recover_after:50.0 () ];
  Runner.run_to_quiescence env;
  (Ocube_sim.Trace.render (Option.get (Runner.trace env)),
   Runner.messages_sent env, Runner.cs_entries env)

let test_full_run_determinism () =
  (* Whole-system reproducibility: same seed, same everything - trace,
     message count, entries - even with random delays, random CS durations
     and a failure. *)
  let t1, m1, e1 = run_traced 1234 in
  let t2, m2, e2 = run_traced 1234 in
  Alcotest.(check string) "identical traces" t1 t2;
  checki "identical messages" m1 m2;
  checki "identical entries" e1 e2;
  let t3, _, _ = run_traced 1235 in
  checkb "different seed differs" true (t1 <> t3)

let test_runner_attach_twice_rejected () =
  let env = make_opencube 2 in
  Alcotest.check_raises "double attach"
    (Invalid_argument "Runner.attach: instance already attached") (fun () ->
      Runner.attach env
        {
          Types.algo_name = "dummy";
          request_cs = ignore;
          release_cs = ignore;
          on_recovered = ignore;
          snapshot_tree = (fun () -> None);
          token_holders = (fun () -> []);
          invariant_check = (fun () -> Ok ());
        })

(* --- open-loop sources ----------------------------------------------------- *)

module Source = Ocube_workload.Source

let drain src =
  let rec go acc =
    match src () with
    | Some a -> go (a :: acc)
    | None -> List.rev acc
  in
  go []

let check_source name mk =
  (* same seed, same stream *)
  let a = drain (mk (Rng.create 77)) in
  let b = drain (mk (Rng.create 77)) in
  checkb (name ^ " deterministic") true (a = b);
  checkb (name ^ " nonempty") true (a <> []);
  checkb (name ^ " monotone") true (is_sorted a);
  List.iter
    (fun (t, node) ->
      checkb (name ^ " time in horizon") true (t >= 0.0 && t < 300.0);
      checkb (name ^ " node in range") true (node >= 0 && node < 16))
    a;
  (* a drained source stays drained *)
  let s = mk (Rng.create 3) in
  ignore (drain s);
  checkb (name ^ " stays exhausted") true (s () = None)

let test_source_contracts () =
  check_source "poisson" (fun rng ->
      Source.poisson ~rng ~n:16 ~rate:0.5 ~horizon:300.0);
  check_source "bursty" (fun rng ->
      Source.bursty ~rng ~n:16 ~rate:0.3 ~burst:4.0 ~on_mean:10.0
        ~off_mean:30.0 ~horizon:300.0);
  check_source "zipf" (fun rng ->
      Source.zipf ~rng ~n:16 ~rate:0.5 ~s:1.2 ~horizon:300.0)

let test_source_poisson_rate () =
  let rng = Rng.create 12 in
  let arrivals =
    drain (Source.poisson ~rng ~n:8 ~rate:2.0 ~horizon:1000.0)
  in
  let count = float_of_int (List.length arrivals) in
  (* aggregate rate 2.0 over 1000 time units: ~2000 arrivals *)
  checkb "rate roughly right" true (count > 1600.0 && count < 2400.0)

let test_source_zipf_skew () =
  let rng = Rng.create 4 in
  let arrivals =
    drain (Source.zipf ~rng ~n:16 ~rate:2.0 ~s:1.4 ~horizon:500.0)
  in
  let hits = Array.make 16 0 in
  List.iter (fun (_, node) -> hits.(node) <- hits.(node) + 1) arrivals;
  checkb "node 0 is the hotspot" true
    (Array.for_all (fun c -> c <= hits.(0)) hits);
  checkb "tail nodes still get traffic" true (hits.(15) > 0)

let test_source_of_list_roundtrip () =
  let l = [ (0.5, 1); (0.5, 2); (3.25, 0) ] in
  checkb "roundtrip" true (Source.to_list (Source.of_list l) = l)

let suite =
  [
    Alcotest.test_case "poisson sorted and bounded" `Quick
      test_poisson_sorted_and_bounded;
    Alcotest.test_case "poisson rate" `Quick test_poisson_rate_roughly_right;
    Alcotest.test_case "poisson deterministic" `Quick
      test_poisson_deterministic;
    Alcotest.test_case "hotspot skew" `Quick test_hotspot_skew;
    Alcotest.test_case "serial schedule" `Quick test_serial_each_node_once;
    Alcotest.test_case "merge sorts" `Quick test_merge_sorts;
    Alcotest.test_case "fault spacing" `Quick test_faults_random_spacing;
    Alcotest.test_case "fault avoid list" `Quick test_faults_avoid;
    Alcotest.test_case "fault zero count" `Quick test_faults_zero_count;
    Alcotest.test_case "fault avoid-all and negative count rejected" `Quick
      test_faults_all_nodes_avoided_rejected;
    Alcotest.test_case "fault single candidate may repeat" `Quick
      test_faults_single_candidate_repeats;
    Alcotest.test_case "faults never repeat back-to-back" `Quick
      test_faults_no_consecutive_repeat;
    Alcotest.test_case "runner backlog" `Quick test_runner_backlog;
    Alcotest.test_case "runner wait statistics" `Quick test_runner_wait_stats;
    Alcotest.test_case "runner exponential CS durations" `Quick
      test_runner_exponential_cs;
    Alcotest.test_case "wish on failed node dropped" `Quick
      test_runner_wish_on_failed_node_dropped;
    Alcotest.test_case "attach twice rejected" `Quick
      test_runner_attach_twice_rejected;
    Alcotest.test_case "whole-system determinism" `Quick
      test_full_run_determinism;
    Alcotest.test_case "open-loop source contracts" `Quick
      test_source_contracts;
    Alcotest.test_case "open-loop poisson rate" `Quick test_source_poisson_rate;
    Alcotest.test_case "zipf hotspot skew" `Quick test_source_zipf_skew;
    Alcotest.test_case "source of_list roundtrip" `Quick
      test_source_of_list_roundtrip;
  ]
